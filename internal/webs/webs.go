// Package webs implements interprocedural global variable promotion
// (§4.1 of the paper): partitioning the procedures that access each
// eligible global variable into webs — call-graph live ranges — and
// coloring the web interference graph onto a set of callee-saves
// registers, so that
//
//   - a global is accessed from the same register in every procedure of a
//     promoted web, with loads/stores only at web entry procedures; and
//   - the same register can hold different globals in disjoint regions of
//     the call graph (the improvement over [Wall 86]'s whole-program
//     dedication, reproduced here as "blanket" promotion).
package webs

import (
	"fmt"
	"sort"

	"ipra/internal/callgraph"
	"ipra/internal/refsets"
)

// Web is a minimal call-graph subgraph for one global variable such that
// the variable is referenced in no ancestor and no descendant of the
// subgraph (§4.1.1).
type Web struct {
	ID  int
	Var string

	// Nodes is the set of call graph node IDs in the web.
	Nodes map[int]bool
	// Entries are the web's root nodes: members with no predecessor inside
	// the web. The compiler second phase loads the global at their entry
	// points and stores it back at their exits.
	Entries []int

	// FromCycle marks webs created for recursive call chains whose
	// references would otherwise be missed (§4.1.2).
	FromCycle bool

	// Priority orders webs for coloring; see ComputePriorities.
	Priority float64
	// RefWeight is the estimated dynamic references to Var inside the web.
	RefWeight float64
	// EntryWeight is the estimated dynamic calls to entry nodes (each call
	// pays a load and possibly a store).
	EntryWeight float64
	// LRefNodes counts members that actually reference Var locally.
	LRefNodes int

	// Discarded webs are never considered for coloring.
	Discarded     bool
	DiscardReason string

	// Color is the index of the register assigned by coloring, or -1.
	Color int
	// Blanket marks webs synthesized by blanket promotion ([Wall 86]
	// emulation): the register is dedicated over the whole program.
	Blanket bool
}

// Contains reports whether the web contains node id.
func (w *Web) Contains(id int) bool { return w.Nodes[id] }

// NodeIDs returns the member node IDs in ascending order.
func (w *Web) NodeIDs() []int {
	ids := make([]int, 0, len(w.Nodes))
	for id := range w.Nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// IsEntry reports whether node id is an entry node of the web.
func (w *Web) IsEntry(id int) bool {
	for _, e := range w.Entries {
		if e == id {
			return true
		}
	}
	return false
}

func (w *Web) String() string {
	return fmt.Sprintf("web %d for %s: nodes=%v entries=%v color=%d", w.ID, w.Var, w.NodeIDs(), w.Entries, w.Color)
}

// ----------------------------------------------------------------------------
// Web identification (Figure 2)

// Identify computes the webs of every eligible global variable, following
// the Compute_Webs/Expand_Web algorithm of Figure 2, plus the paper's
// companion rule for recursive call chains.
func Identify(g *callgraph.Graph, sets *refsets.Sets) []*Web {
	var webs []*Web
	for vi, v := range sets.Vars {
		var vwebs []*Web
		// Candidate web entry nodes: G ∈ L_REF[P] and G ∉ P_REF[P].
		for _, nd := range g.Nodes {
			p := nd.ID
			if !sets.LRef[p].Has(vi) || sets.PRef[p].Has(vi) {
				continue
			}
			if containedIn(vwebs, p) {
				continue
			}
			w := &Web{Var: v, Nodes: make(map[int]bool), Color: -1}
			growWeb(g, sets, vi, w, []int{p})
			vwebs = mergeOverlap(vwebs, w)
		}
		// Recursive call chains: a cycle that references G but whose entry
		// paths never do leaves G in P_REF all around the cycle, so no
		// candidate entry exists. Put each such cycle in its own web and
		// enlarge it for correctness (§4.1.2).
		for _, nd := range g.Nodes {
			p := nd.ID
			if !nd.Recursive || !sets.LRef[p].Has(vi) || containedIn(vwebs, p) {
				continue
			}
			w := &Web{Var: v, Nodes: make(map[int]bool), Color: -1, FromCycle: true}
			var seed []int
			for _, other := range g.Nodes {
				if other.SCC == nd.SCC {
					seed = append(seed, other.ID)
				}
			}
			growWeb(g, sets, vi, w, seed)
			vwebs = mergeOverlap(vwebs, w)
		}
		webs = append(webs, vwebs...)
	}
	for i, w := range webs {
		w.ID = i + 1
		computeEntries(g, w)
	}
	return webs
}

// growWeb runs the repeat/until loop of Compute_Webs: expand from the seed
// nodes, then repeatedly pull in the external predecessors of any member
// that has both internal and external predecessors, until every member's
// predecessors are either all internal or all external.
func growWeb(g *callgraph.Graph, sets *refsets.Sets, vi int, w *Web, seed []int) {
	temp := seed
	for {
		for _, q := range temp {
			expandWeb(g, sets, vi, w, q)
		}
		// S = members with both an internal and an external predecessor.
		var nextTemp []int
		seen := make(map[int]bool)
		for z := range w.Nodes {
			internal, external := false, false
			for _, e := range g.Nodes[z].In {
				if w.Nodes[e.From] {
					internal = true
				} else {
					external = true
				}
			}
			if internal && external {
				for _, e := range g.Nodes[z].In {
					if !w.Nodes[e.From] && !seen[e.From] {
						seen[e.From] = true
						nextTemp = append(nextTemp, e.From)
					}
				}
			}
		}
		if len(nextTemp) == 0 {
			return
		}
		sort.Ints(nextTemp)
		temp = nextTemp
	}
}

// expandWeb is Figure 2's Expand_Web: add Q, then recursively add every
// successor that has the variable in its C_REF or L_REF set.
func expandWeb(g *callgraph.Graph, sets *refsets.Sets, vi int, w *Web, q int) {
	if w.Nodes[q] {
		return
	}
	w.Nodes[q] = true
	for _, e := range g.Nodes[q].Out {
		s := e.To
		if w.Nodes[s] {
			continue
		}
		if sets.CRef[s].Has(vi) || sets.LRef[s].Has(vi) {
			expandWeb(g, sets, vi, w, s)
		}
	}
}

// mergeOverlap adds w to ws, folding together any existing webs for the
// same variable that share nodes with it (Figure 2's final merge step).
func mergeOverlap(ws []*Web, w *Web) []*Web {
	out := ws[:0]
	for _, x := range ws {
		if x.Var == w.Var && sharesNode(x, w) {
			for id := range x.Nodes {
				w.Nodes[id] = true
			}
			w.FromCycle = w.FromCycle || x.FromCycle
			continue
		}
		out = append(out, x)
	}
	return append(out, w)
}

func sharesNode(a, b *Web) bool {
	small, large := a, b
	if len(b.Nodes) < len(a.Nodes) {
		small, large = b, a
	}
	for id := range small.Nodes {
		if large.Nodes[id] {
			return true
		}
	}
	return false
}

func containedIn(ws []*Web, id int) bool {
	for _, w := range ws {
		if w.Nodes[id] {
			return true
		}
	}
	return false
}

// computeEntries fills w.Entries: members with no predecessor in the web.
func computeEntries(g *callgraph.Graph, w *Web) {
	w.Entries = w.Entries[:0]
	for _, id := range w.NodeIDs() {
		internal := false
		for _, e := range g.Nodes[id].In {
			if w.Nodes[e.From] && e.From != id {
				internal = true
				break
			}
			if e.From == id {
				internal = true // self-recursive members cannot be entries
				break
			}
		}
		if !internal {
			w.Entries = append(w.Entries, id)
		}
	}
}

// Validate checks the structural invariants §4.1.2 requires for
// correctness; it is used by the property-based tests.
func Validate(g *callgraph.Graph, sets *refsets.Sets, w *Web) error {
	vi, ok := sets.Index[w.Var]
	if !ok {
		return fmt.Errorf("web %d: unknown variable %s", w.ID, w.Var)
	}
	if len(w.Nodes) == 0 {
		return fmt.Errorf("web %d: empty", w.ID)
	}
	entries := make(map[int]bool, len(w.Entries))
	for _, e := range w.Entries {
		entries[e] = true
		if !w.Nodes[e] {
			return fmt.Errorf("web %d: entry %d not a member", w.ID, e)
		}
	}
	for id := range w.Nodes {
		hasInternal := false
		for _, e := range g.Nodes[id].In {
			if w.Nodes[e.From] {
				hasInternal = true
			} else if !entries[id] {
				return fmt.Errorf("web %d: internal node %s has external predecessor %s",
					w.ID, g.Nodes[id].Name, g.Nodes[e.From].Name)
			}
		}
		if entries[id] && hasInternal {
			return fmt.Errorf("web %d: entry node %s has internal predecessor", w.ID, g.Nodes[id].Name)
		}
	}
	// No member may call an external procedure that references the
	// variable (the web must be a complete live range).
	for id := range w.Nodes {
		for _, e := range g.Nodes[id].Out {
			if w.Nodes[e.To] {
				continue
			}
			if sets.LRef[e.To].Has(vi) || sets.CRef[e.To].Has(vi) {
				return fmt.Errorf("web %d: member %s calls external %s which references %s",
					w.ID, g.Nodes[id].Name, g.Nodes[e.To].Name, w.Var)
			}
		}
	}
	return nil
}
