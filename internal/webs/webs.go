// Package webs implements interprocedural global variable promotion
// (§4.1 of the paper): partitioning the procedures that access each
// eligible global variable into webs — call-graph live ranges — and
// coloring the web interference graph onto a set of callee-saves
// registers, so that
//
//   - a global is accessed from the same register in every procedure of a
//     promoted web, with loads/stores only at web entry procedures; and
//   - the same register can hold different globals in disjoint regions of
//     the call graph (the improvement over [Wall 86]'s whole-program
//     dedication, reproduced here as "blanket" promotion).
package webs

import (
	"fmt"
	"math/bits"
	"sort"

	"ipra/internal/callgraph"
	"ipra/internal/ir"
	"ipra/internal/pipeline"
	"ipra/internal/refsets"
)

// Web is a minimal call-graph subgraph for one global variable such that
// the variable is referenced in no ancestor and no descendant of the
// subgraph (§4.1.1).
type Web struct {
	ID  int
	Var string

	// Nodes is the member set, a bit per call graph node ID. Dense bit
	// sets make the hot operations of web construction and coloring —
	// membership tests, merges, and the pairwise interference test —
	// word-wise instead of per-element map traffic.
	Nodes ir.BitSet
	// Entries are the web's root nodes: members with no predecessor inside
	// the web. The compiler second phase loads the global at their entry
	// points and stores it back at their exits.
	Entries []int

	// FromCycle marks webs created for recursive call chains whose
	// references would otherwise be missed (§4.1.2).
	FromCycle bool

	// Priority orders webs for coloring; see ComputePriorities.
	Priority float64
	// RefWeight is the estimated dynamic references to Var inside the web.
	RefWeight float64
	// EntryWeight is the estimated dynamic calls to entry nodes (each call
	// pays a load and possibly a store).
	EntryWeight float64
	// LRefNodes counts members that actually reference Var locally.
	LRefNodes int

	// Discarded webs are never considered for coloring.
	Discarded     bool
	DiscardReason string

	// Color is the index of the register assigned by coloring, or -1.
	Color int
	// Blanket marks webs synthesized by blanket promotion ([Wall 86]
	// emulation): the register is dedicated over the whole program.
	Blanket bool
}

// Contains reports whether the web contains node id.
func (w *Web) Contains(id int) bool { return w.Nodes.Has(id) }

// Size returns the number of member nodes.
func (w *Web) Size() int { return w.Nodes.Count() }

// NodeIDs returns the member node IDs in ascending order.
func (w *Web) NodeIDs() []int { return w.Nodes.Elems(nil) }

// IsEntry reports whether node id is an entry node of the web.
func (w *Web) IsEntry(id int) bool {
	for _, e := range w.Entries {
		if e == id {
			return true
		}
	}
	return false
}

func (w *Web) String() string {
	return fmt.Sprintf("web %d for %s: nodes=%v entries=%v color=%d", w.ID, w.Var, w.NodeIDs(), w.Entries, w.Color)
}

// ----------------------------------------------------------------------------
// Web identification (Figure 2)

// identifyState is the shared, read-only context for per-variable web
// construction. It inverts the reference sets once — per-variable L_REF
// node lists and per-SCC member lists — so each variable visits only the
// nodes that mention it instead of scanning the whole graph.
type identifyState struct {
	g    *callgraph.Graph
	sets *refsets.Sets

	// lrefNodes[vi] lists the node IDs with variable vi in L_REF,
	// ascending.
	lrefNodes [][]int
	// lazy defers building lrefNodes[vi] until websFor(vi) asks for it:
	// the incremental analyzer rebuilds a handful of variables, so paying
	// the full inverted-index build up front would dominate its runtime.
	// Lazy state must not be shared across goroutines.
	lazy      bool
	lrefReady ir.BitSet
	// sccMembers[c] lists the node IDs of SCC c, ascending (SCCs are
	// numbered densely by the call graph).
	sccMembers [][]int
}

func newIdentifyState(g *callgraph.Graph, sets *refsets.Sets, lazy bool) *identifyState {
	st := &identifyState{g: g, sets: sets, lazy: lazy, lrefNodes: make([][]int, len(sets.Vars))}
	if lazy {
		st.lrefReady = ir.NewBitSet(len(sets.Vars))
	} else {
		// Two-pass slab build: count every (node, variable) L_REF pair,
		// carve one backing slab, then fill. Per-variable appends would pay
		// an allocation chain per variable; the word loop also avoids a
		// heap-allocated ForEach closure per node.
		counts := make([]int, len(sets.Vars))
		total := 0
		for _, nd := range g.Nodes {
			for wi, word := range sets.LRef[nd.ID] {
				for word != 0 {
					vi := wi*64 + bits.TrailingZeros64(word)
					word &= word - 1
					counts[vi]++
					total++
				}
			}
		}
		slab := make([]int, total)
		off := 0
		for vi, c := range counts {
			if c > 0 {
				st.lrefNodes[vi] = slab[off:off : off+c]
				off += c
			}
		}
		for _, nd := range g.Nodes {
			for wi, word := range sets.LRef[nd.ID] {
				for word != 0 {
					vi := wi*64 + bits.TrailingZeros64(word)
					word &= word - 1
					st.lrefNodes[vi] = append(st.lrefNodes[vi], nd.ID)
				}
			}
		}
	}
	maxSCC := -1
	for _, nd := range g.Nodes {
		if nd.SCC > maxSCC {
			maxSCC = nd.SCC
		}
	}
	st.sccMembers = make([][]int, maxSCC+1)
	sccCounts := make([]int, maxSCC+1)
	for _, nd := range g.Nodes {
		sccCounts[nd.SCC]++
	}
	sccSlab := make([]int, len(g.Nodes))
	off := 0
	for c, n := range sccCounts {
		if n > 0 {
			st.sccMembers[c] = sccSlab[off:off : off+n]
			off += n
		}
	}
	for _, nd := range g.Nodes {
		st.sccMembers[nd.SCC] = append(st.sccMembers[nd.SCC], nd.ID)
	}
	return st
}

// lref returns the ascending node IDs whose L_REF contains variable vi,
// materializing the list on first use in lazy mode.
func (st *identifyState) lref(vi int) []int {
	if st.lazy && !st.lrefReady.Has(vi) {
		st.lrefReady.Set(vi)
		for _, nd := range st.g.Nodes {
			if st.sets.LRef[nd.ID].Has(vi) {
				st.lrefNodes[vi] = append(st.lrefNodes[vi], nd.ID)
			}
		}
	}
	return st.lrefNodes[vi]
}

// identArena batches the allocations of web construction: Web structs and
// node bit sets both come from chunked, never-reclaimed slabs, so one
// variable's construction pays a constant number of allocations instead
// of several per web. An arena must not be shared across goroutines.
type identArena struct {
	bits ir.BitArena
	webs []Web
	// grow is growWeb's reusable frontier scratch; free between calls.
	grow []int
}

// newWeb returns a fresh web for v with an empty node set sized to the
// graph.
func (a *identArena) newWeb(v string, nodes int, fromCycle bool) *Web {
	if len(a.webs) == 0 {
		a.webs = make([]Web, 16)
	}
	w := &a.webs[0]
	a.webs = a.webs[1:]
	*w = Web{Var: v, Nodes: a.bits.New(nodes), Color: -1, FromCycle: fromCycle}
	return w
}

// websFor runs Compute_Webs for a single variable, allocating out of ar.
// In eager mode it touches only read-only shared state, so distinct
// variables can run concurrently with per-call (or per-worker) arenas.
func (st *identifyState) websFor(vi int, ar *identArena) []*Web {
	g, sets := st.g, st.sets
	lref := st.lref(vi)
	v := sets.Vars[vi]
	var vwebs []*Web
	// covered is the union of all webs built so far for this variable: a
	// one-word probe replaces the per-web membership scan, and a freshly
	// grown web only pays the pairwise merge scan when it actually
	// overlaps the union.
	covered := ar.bits.New(len(g.Nodes))
	add := func(w *Web) {
		if covered.Intersects(w.Nodes) {
			vwebs = mergeOverlap(vwebs, w)
		} else {
			vwebs = append(vwebs, w)
		}
		covered.OrWith(w.Nodes)
	}
	// Candidate web entry nodes: G ∈ L_REF[P] and G ∉ P_REF[P].
	// growWeb never retains its seed, so one reused buffer serves every
	// candidate instead of a fresh one-element slice per candidate.
	var seedBuf [1]int
	for _, p := range lref {
		if sets.PRef[p].Has(vi) || covered.Has(p) {
			continue
		}
		w := ar.newWeb(v, len(g.Nodes), false)
		seedBuf[0] = p
		growWeb(g, sets, vi, w, seedBuf[:], ar)
		add(w)
	}
	// Recursive call chains: a cycle that references G but whose entry
	// paths never do leaves G in P_REF all around the cycle, so no
	// candidate entry exists. Put each such cycle in its own web and
	// enlarge it for correctness (§4.1.2).
	for _, p := range lref {
		nd := g.Nodes[p]
		if !nd.Recursive || covered.Has(p) {
			continue
		}
		w := ar.newWeb(v, len(g.Nodes), true)
		growWeb(g, sets, vi, w, st.sccMembers[nd.SCC], ar)
		add(w)
	}
	return vwebs
}

// Identify computes the webs of every eligible global variable, following
// the Compute_Webs/Expand_Web algorithm of Figure 2, plus the paper's
// companion rule for recursive call chains.
func Identify(g *callgraph.Graph, sets *refsets.Sets) []*Web {
	return IdentifyJobs(g, sets, 1)
}

// IdentifyJobs is Identify with the per-variable construction fanned
// across a bounded worker pool: webs of distinct variables never interact
// until coloring, so each variable is an independent work item. jobs
// follows pipeline.Workers semantics (0 = one worker per CPU, 1 =
// sequential). Results are concatenated in variable-index order and IDs
// assigned afterwards, so the output is byte-identical to the sequential
// run regardless of worker interleaving.
func IdentifyJobs(g *callgraph.Graph, sets *refsets.Sets, jobs int) []*Web {
	st := newIdentifyState(g, sets, false)
	perVar := make([][]*Web, len(sets.Vars))
	if pipeline.Workers(jobs) <= 1 || len(sets.Vars) < 2 {
		var ar identArena
		for vi := range sets.Vars {
			perVar[vi] = st.websFor(vi, &ar)
		}
	} else {
		// Arenas are not goroutine-safe, so parallel construction pays one
		// arena per variable; each still batches that variable's webs.
		perVar, _ = pipeline.Map(jobs, make([]struct{}, len(sets.Vars)),
			func(vi int, _ struct{}) ([]*Web, error) {
				var ar identArena
				return st.websFor(vi, &ar), nil
			})
	}
	var webs []*Web
	for _, vw := range perVar {
		webs = append(webs, vw...)
	}
	for i, w := range webs {
		w.ID = i + 1
		computeEntries(g, w)
	}
	return webs
}

// Identifier exposes per-variable web construction to the incremental
// analyzer: it builds the shared inverted indexes once, then rebuilds only
// the web lists of dirty variables through the same websFor code path
// IdentifyJobs uses, so a rebuilt list is byte-identical to the clean one.
type Identifier struct {
	st *identifyState
	ar identArena
}

// NewIdentifier prepares per-variable web construction over the graph.
func NewIdentifier(g *callgraph.Graph, sets *refsets.Sets) *Identifier {
	return &Identifier{st: newIdentifyState(g, sets, true)}
}

// WebsFor computes the webs of one variable (by index). IDs and entry
// lists are left unset; callers assign IDs over the assembled program-wide
// list and fill entries with ComputeEntries, exactly as IdentifyJobs does.
func (id *Identifier) WebsFor(vi int) []*Web { return id.st.websFor(vi, &id.ar) }

// ComputeEntries fills w.Entries from the current graph edges.
func ComputeEntries(g *callgraph.Graph, w *Web) { computeEntries(g, w) }

// growWeb runs the repeat/until loop of Compute_Webs: expand from the seed
// nodes, then repeatedly pull in the external predecessors of any member
// that has both internal and external predecessors, until every member's
// predecessors are either all internal or all external.
func growWeb(g *callgraph.Graph, sets *refsets.Sets, vi int, w *Web, seed []int, ar *identArena) {
	temp := seed
	seen := ar.bits.New(len(g.Nodes))
	// The first frontier reuses the arena's scratch buffer; growth loops
	// beyond one round are rare enough to allocate their own. The buffer
	// may still back temp when it returns to the arena below — that is
	// safe because the arena hands it out again only on the next growWeb
	// call, by which time this call's temp is dead.
	nextTemp := ar.grow[:0]
	rounds := 0
	for {
		for _, q := range temp {
			expandWeb(g, sets, vi, w, q)
		}
		// S = members with both an internal and an external predecessor.
		for i := range seen {
			seen[i] = 0
		}
		for wi, word := range w.Nodes {
			for word != 0 {
				z := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				internal, external := false, false
				for _, e := range g.Nodes[z].In {
					if w.Nodes.Has(e.From) {
						internal = true
					} else {
						external = true
					}
				}
				if internal && external {
					for _, e := range g.Nodes[z].In {
						if !w.Nodes.Has(e.From) && !seen.Has(e.From) {
							seen.Set(e.From)
							nextTemp = append(nextTemp, e.From)
						}
					}
				}
			}
		}
		if len(nextTemp) == 0 {
			if rounds == 0 {
				ar.grow = nextTemp[:0]
			}
			return
		}
		sort.Ints(nextTemp)
		temp = nextTemp
		if rounds == 0 {
			ar.grow = nextTemp[:0]
		}
		rounds++
		nextTemp = nil
	}
}

// expandWeb is Figure 2's Expand_Web: add Q, then recursively add every
// successor that has the variable in its C_REF or L_REF set.
func expandWeb(g *callgraph.Graph, sets *refsets.Sets, vi int, w *Web, q int) {
	if w.Nodes.Has(q) {
		return
	}
	w.Nodes.Set(q)
	for _, e := range g.Nodes[q].Out {
		s := e.To
		if w.Nodes.Has(s) {
			continue
		}
		if sets.CRef[s].Has(vi) || sets.LRef[s].Has(vi) {
			expandWeb(g, sets, vi, w, s)
		}
	}
}

// mergeOverlap adds w to ws, folding together any existing webs for the
// same variable that share nodes with it (Figure 2's final merge step).
func mergeOverlap(ws []*Web, w *Web) []*Web {
	out := ws[:0]
	for _, x := range ws {
		if x.Var == w.Var && sharesNode(x, w) {
			w.Nodes.OrWith(x.Nodes)
			w.FromCycle = w.FromCycle || x.FromCycle
			continue
		}
		out = append(out, x)
	}
	return append(out, w)
}

func sharesNode(a, b *Web) bool { return a.Nodes.Intersects(b.Nodes) }

// computeEntries fills w.Entries: members with no predecessor in the web.
// The word loop replaces a ForEach closure, which the compiler heap-
// allocates once per call — one allocation per web, on a path that visits
// every web of the program.
func computeEntries(g *callgraph.Graph, w *Web) {
	w.Entries = w.Entries[:0]
	for wi, word := range w.Nodes {
		for word != 0 {
			id := wi*64 + bits.TrailingZeros64(word)
			word &= word - 1
			internal := false
			for _, e := range g.Nodes[id].In {
				// Self-recursive members cannot be entries either.
				if e.From == id || w.Nodes.Has(e.From) {
					internal = true
					break
				}
			}
			if !internal {
				w.Entries = append(w.Entries, id)
			}
		}
	}
}

// Validate checks the structural invariants §4.1.2 requires for
// correctness; it is used by the property-based tests.
func Validate(g *callgraph.Graph, sets *refsets.Sets, w *Web) error {
	vi, ok := sets.Index[w.Var]
	if !ok {
		return fmt.Errorf("web %d: unknown variable %s", w.ID, w.Var)
	}
	if w.Nodes.Empty() {
		return fmt.Errorf("web %d: empty", w.ID)
	}
	entries := make(map[int]bool, len(w.Entries))
	for _, e := range w.Entries {
		entries[e] = true
		if !w.Nodes.Has(e) {
			return fmt.Errorf("web %d: entry %d not a member", w.ID, e)
		}
	}
	for _, id := range w.NodeIDs() {
		hasInternal := false
		for _, e := range g.Nodes[id].In {
			if w.Nodes.Has(e.From) {
				hasInternal = true
			} else if !entries[id] {
				return fmt.Errorf("web %d: internal node %s has external predecessor %s",
					w.ID, g.Nodes[id].Name, g.Nodes[e.From].Name)
			}
		}
		if entries[id] && hasInternal {
			return fmt.Errorf("web %d: entry node %s has internal predecessor", w.ID, g.Nodes[id].Name)
		}
	}
	// No member may call an external procedure that references the
	// variable (the web must be a complete live range).
	for _, id := range w.NodeIDs() {
		for _, e := range g.Nodes[id].Out {
			if w.Nodes.Has(e.To) {
				continue
			}
			if sets.LRef[e.To].Has(vi) || sets.CRef[e.To].Has(vi) {
				return fmt.Errorf("web %d: member %s calls external %s which references %s",
					w.ID, g.Nodes[id].Name, g.Nodes[e.To].Name, w.Var)
			}
		}
	}
	return nil
}
