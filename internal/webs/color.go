package webs

import (
	"math/bits"
	"sort"

	"ipra/internal/callgraph"
	"ipra/internal/ir"
	"ipra/internal/refsets"
)

// FilterOptions tune which webs are considered for coloring (§6.2: in the
// PA Optimizer experiment, 1094 webs were found but only 489 considered —
// the rest were "too sparse (low ratio of L_REF nodes to total nodes)" or
// single-node webs with infrequent access).
type FilterOptions struct {
	// MinLRefRatio is the minimum fraction of members that must reference
	// the variable locally.
	MinLRefRatio float64
	// MinSingleNodeWeight is the minimum estimated dynamic reference count
	// for a single-node web to be worth a dedicated register.
	MinSingleNodeWeight float64
	// KeepAll disables the economic filters (webs with no entry nodes are
	// still discarded — they cannot be promoted correctly). Used by the
	// paper's illustrative examples and by tests.
	KeepAll bool
}

// DefaultFilter mirrors the prototype's behaviour.
func DefaultFilter() FilterOptions {
	return FilterOptions{MinLRefRatio: 0.125, MinSingleNodeWeight: 8}
}

// ComputePriorities fills RefWeight, EntryWeight, LRefNodes and Priority
// for every web. Following §4.1.3 and §7.5, the benefit estimate weighs
// the memory traffic a level-2 compilation pays for the variable in each
// member procedure by that procedure's estimated call count:
//
//   - a referencing procedure loads the variable at entry and stores it at
//     exit (2 transfers per invocation), and
//   - flushes/reloads it around every call it makes (2 transfers per
//     outgoing call), since the callee may use the variable;
//
// promotion deletes all of these. Against that, every call to a web entry
// node pays the inserted load/store plus the save/restore of the dedicated
// callee-saves register (4 transfers).
func ComputePriorities(g *callgraph.Graph, sets *refsets.Sets, ws []*Web) {
	for _, w := range ws {
		w.RefWeight = 0
		w.LRefNodes = 0
		vi := sets.Index[w.Var]
		// Word loop instead of ForEach: the closure would be heap-allocated
		// once per web.
		for wi, word := range w.Nodes {
			for word != 0 {
				id := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				nd := g.Nodes[id]
				if !sets.LRef[id].Has(vi) {
					continue
				}
				w.LRefNodes++
				if nd.Rec == nil {
					continue
				}
				calls := nd.Count
				if calls < 1 {
					calls = 1
				}
				var callsOut float64
				for _, e := range nd.Out {
					callsOut += e.Count
				}
				w.RefWeight += 2*calls + 2*callsOut
			}
		}
		w.EntryWeight = 0
		for _, e := range w.Entries {
			c := g.Nodes[e].Count
			if c < 1 {
				c = 1
			}
			w.EntryWeight += 4 * c
		}
		w.Priority = w.RefWeight - w.EntryWeight
	}
}

// Filter marks webs that should not be considered for coloring.
func Filter(ws []*Web, opt FilterOptions) {
	for _, w := range ws {
		size := w.Size()
		switch {
		case len(w.Entries) == 0:
			w.Discarded = true
			w.DiscardReason = "no entry nodes (cannot insert load/store)"
		case opt.KeepAll:
			// keep everything else
		case size == 1 && w.RefWeight < opt.MinSingleNodeWeight:
			w.Discarded = true
			w.DiscardReason = "single node with infrequent access"
		case float64(w.LRefNodes)/float64(size) < opt.MinLRefRatio:
			w.Discarded = true
			w.DiscardReason = "too sparse (low L_REF ratio)"
		case w.Priority <= 0:
			w.Discarded = true
			w.DiscardReason = "negative promotion benefit"
		}
	}
}

// Interfere reports whether two webs share a call graph node (§4.1.3:
// interfering webs cannot be promoted to the same register). With bit-set
// membership this is a word-wise intersection test.
func Interfere(a, b *Web) bool {
	if a == b {
		return false
	}
	return a.Nodes.Intersects(b.Nodes)
}

// considered returns the colorable candidates in priority order.
func considered(ws []*Web) []*Web {
	var cs []*Web
	for _, w := range ws {
		if !w.Discarded {
			cs = append(cs, w)
		}
	}
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].Priority != cs[j].Priority {
			return cs[i].Priority > cs[j].Priority
		}
		return cs[i].ID < cs[j].ID
	})
	return cs
}

// carveWebLists builds the node → web lists backbone for the coloring
// loops: per-node slices carved out of one slab, each with capacity for
// every considered web containing that node. The loops only ever append
// colored webs, so full considered membership is an upper bound (which
// webs end up colored cannot be known before coloring runs) — precounting
// it replaces per-node append growth, one allocation per list on the
// analyzer's hottest coloring path, with two slab allocations total.
func carveWebLists(cs []*Web, maxNodes int) [][]*Web {
	counts := make([]int, maxNodes)
	total := 0
	for _, w := range cs {
		for wi, word := range w.Nodes {
			for word != 0 {
				id := wi*64 + bits.TrailingZeros64(word)
				word &= word - 1
				counts[id]++
				total++
			}
		}
	}
	slab := make([]*Web, total)
	lists := make([][]*Web, maxNodes)
	off := 0
	for id, c := range counts {
		if c > 0 {
			lists[id] = slab[off : off : off+c]
			off += c
		}
	}
	return lists
}

// Color assigns register indexes 0..numRegs-1 to webs in priority order
// (§4.1.3): each web receives the lowest index not used by an interfering
// web already colored. Webs left uncolored keep Color == -1 (their
// variables may still be promoted intraprocedurally by the compiler second
// phase).
//
// Conflicts are found through per-node lists of already-colored webs
// rather than a pairwise scan over every earlier candidate: a colored web
// interferes exactly when it shares a member node, and at any node the
// colored webs all carry distinct colors, so each list holds at most
// numRegs entries. The assignment is identical to the pairwise
// formulation; only the cost drops from quadratic in the candidate count
// to linear in total web membership.
func Color(ws []*Web, numRegs int) int {
	cs := considered(ws)
	colored := 0
	maxNodes := 0
	for _, w := range cs {
		if n := len(w.Nodes) * 64; n > maxNodes {
			maxNodes = n
		}
	}
	webAt := carveWebLists(cs, maxNodes) // node -> colored webs containing it
	inUse := make([]bool, numRegs)
	ids := make([]int, 0, 64)
	for _, w := range cs {
		for c := range inUse {
			inUse[c] = false
		}
		ids = w.Nodes.Elems(ids[:0])
		for _, id := range ids {
			for _, x := range webAt[id] {
				inUse[x.Color] = true
			}
		}
		w.Color = -1
		for c := 0; c < numRegs; c++ {
			if !inUse[c] {
				w.Color = c
				colored++
				break
			}
		}
		if w.Color >= 0 {
			for _, id := range ids {
				webAt[id] = append(webAt[id], w)
			}
		}
	}
	return colored
}

// GreedyColor implements the "greedy" strategy of §6.1 (Table 4 column D):
// color as many webs as possible using the full callee-saves set, but
// without reserving any callee-saves register a member procedure itself
// requires — at every node, the registers taken by webs plus the node's
// own callee-saves need must fit in the set.
//
// need maps node ID to the procedure's estimated callee-saves requirement;
// totalRegs is the size of the callee-saves set.
func GreedyColor(ws []*Web, g *callgraph.Graph, need func(int) int, totalRegs int) int {
	cs := considered(ws)
	webAt := carveWebLists(cs, len(g.Nodes)) // node -> colored webs containing it
	colored := 0
	ids := make([]int, 0, 64)
	inUse := make([]bool, totalRegs)
	for _, w := range cs {
		ids = w.Nodes.Elems(ids[:0])
		// Head-room check at every member node.
		ok := true
		for _, id := range ids {
			if len(webAt[id])+need(id)+1 > totalRegs {
				ok = false
				break
			}
		}
		if !ok {
			w.Color = -1
			continue
		}
		// Lowest color unused by interfering colored webs.
		for c := range inUse {
			inUse[c] = false
		}
		for _, id := range ids {
			for _, x := range webAt[id] {
				if x.Color >= 0 {
					inUse[x.Color] = true
				}
			}
		}
		w.Color = -1
		for c := 0; c < totalRegs; c++ {
			if !inUse[c] {
				w.Color = c
				break
			}
		}
		if w.Color < 0 {
			continue
		}
		colored++
		for _, id := range ids {
			webAt[id] = append(webAt[id], w)
		}
	}
	return colored
}

// BlanketSelect implements [Wall 86]-style blanket promotion (Table 4
// column E): the n most frequently used eligible globals — "as determined
// by analyzing the prioritized web list" (§6.1) — each get a dedicated
// register over the whole program. Every node that may reference the
// variable joins the web; the start nodes are the entries.
func BlanketSelect(g *callgraph.Graph, sets *refsets.Sets, ws []*Web, n int) []*Web {
	// Total weight per variable from the prioritized web list.
	weight := make(map[string]float64)
	for _, w := range ws {
		if !w.Discarded {
			weight[w.Var] += w.RefWeight
		}
	}
	vars := make([]string, 0, len(weight))
	for v := range weight {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool {
		if weight[vars[i]] != weight[vars[j]] {
			return weight[vars[i]] > weight[vars[j]]
		}
		return vars[i] < vars[j]
	})
	if len(vars) > n {
		vars = vars[:n]
	}

	var out []*Web
	for i, v := range vars {
		w := &Web{
			ID: 10000 + i, Var: v, Nodes: ir.NewBitSet(len(g.Nodes)),
			Color: i, Blanket: true,
		}
		w.Nodes.Fill(len(g.Nodes))
		w.Entries = append(w.Entries, g.Starts...)
		out = append(out, w)
	}
	return out
}
