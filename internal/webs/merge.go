package webs

import (
	"sort"

	"ipra/internal/callgraph"
	"ipra/internal/ir"
	"ipra/internal/refsets"
)

// Merge implements the §7.6.1 re-merging extension: "independent webs of a
// global variable can be re-merged to allow sharing of entry nodes, at the
// expense of extra interferences."
//
// Separate webs of one variable each pay a load (and possibly a store) on
// every call to their entry nodes. When the webs hang under a common, cold
// ancestor — sibling procedures called from one driver loop, say — merging
// them through the connecting region moves the single entry to the
// ancestor, and the variable stays in its register across all the calls in
// between. Merge performs the rewrite when the merged web's estimated
// priority beats the sum of the originals'.
func Merge(g *callgraph.Graph, sets *refsets.Sets, ws []*Web) []*Web {
	maxID := 0
	for _, w := range ws {
		if w.ID > maxID {
			maxID = w.ID
		}
	}
	byVar := make(map[string][]*Web)
	for _, w := range ws {
		byVar[w.Var] = append(byVar[w.Var], w)
	}

	var out []*Web
	vars := make([]string, 0, len(byVar))
	for v := range byVar {
		vars = append(vars, v)
	}
	sort.Strings(vars)

	for _, v := range vars {
		group := byVar[v]
		if len(group) < 2 {
			out = append(out, group...)
			continue
		}
		merged := tryMerge(g, sets, v, group, maxID+1)
		if merged == nil {
			out = append(out, group...)
			continue
		}
		maxID++
		out = append(out, merged)
	}
	return out
}

// tryMerge builds the merged web for one variable's webs and returns it if
// profitable, else nil.
func tryMerge(g *callgraph.Graph, sets *refsets.Sets, v string, group []*Web, id int) *Web {
	vi, ok := sets.Index[v]
	if !ok {
		return nil
	}
	// Common dominator of all entries.
	var entries []int
	for _, w := range group {
		entries = append(entries, w.Entries...)
	}
	if len(entries) == 0 {
		return nil
	}
	dom := entries[0]
	for _, e := range entries[1:] {
		dom = commonDominator(g, dom, e)
		if dom < 0 {
			return nil // only the virtual root dominates them all
		}
	}
	if g.Nodes[dom].Rec == nil {
		return nil // cannot insert the entry load into unknown code
	}

	// Connecting region: nodes reachable from the dominator that reach a
	// web node.
	inWebs := ir.NewBitSet(len(g.Nodes))
	for _, w := range group {
		inWebs.OrWith(w.Nodes)
	}
	region := connectingRegion(g, dom, inWebs)
	region.OrWith(inWebs)

	w := &Web{ID: id, Var: v, Nodes: ir.NewBitSet(len(g.Nodes)), Color: -1}
	growWeb(g, sets, vi, w, region.Elems(nil), new(identArena))
	computeEntries(g, w)
	if len(w.Entries) == 0 {
		return nil
	}
	// No member may lack a summary record (we must compile every member).
	bad := false
	w.Nodes.ForEach(func(n int) {
		if g.Nodes[n].Rec == nil {
			bad = true
		}
	})
	if bad {
		return nil
	}

	// Profitability: merged priority must beat the group's combined
	// priority (discarded members contribute nothing).
	tmp := []*Web{w}
	ComputePriorities(g, sets, tmp)
	var oldSum float64
	for _, x := range group {
		if !x.Discarded && x.Priority > 0 {
			oldSum += x.Priority
		}
	}
	if w.Priority <= oldSum {
		return nil
	}
	return w
}

// commonDominator returns the nearest common ancestor of a and b in the
// dominator tree, or -1 when only the virtual root dominates both.
func commonDominator(g *callgraph.Graph, a, b int) int {
	depth := func(n int) int {
		if n < 0 {
			return -1
		}
		return g.Nodes[n].DomDepth
	}
	for a != b {
		if a < 0 || b < 0 {
			return -1
		}
		if depth(a) >= depth(b) {
			a = g.Nodes[a].IDom
		} else {
			b = g.Nodes[b].IDom
		}
	}
	return a
}

// connectingRegion returns the nodes on paths from dom to any node in
// targets (dom included), as the word-wise intersection of forward
// reachability from dom with backward reachability from the targets.
func connectingRegion(g *callgraph.Graph, dom int, targets ir.BitSet) ir.BitSet {
	// Forward reachability from dom.
	fwd := ir.NewBitSet(len(g.Nodes))
	fwd.Set(dom)
	stack := []int{dom}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Nodes[n].Out {
			if !fwd.Has(e.To) {
				fwd.Set(e.To)
				stack = append(stack, e.To)
			}
		}
	}
	// Backward reachability from the targets.
	bwd := targets.Clone()
	stack = targets.Elems(stack[:0])
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Nodes[n].In {
			if !bwd.Has(e.From) {
				bwd.Set(e.From)
				stack = append(stack, e.From)
			}
		}
	}
	region := fwd
	for i := range region {
		region[i] &= bwd[i]
	}
	region.Set(dom)
	return region
}
