package webs_test

import (
	"reflect"
	"sort"
	"testing"

	"ipra/internal/callgraph"
	"ipra/internal/refsets"
	"ipra/internal/summary"
	"ipra/internal/webs"
)

// figure3 builds the call graph of the paper's Figure 3: procedures A–H,
// globals g1–g3, with
//
//	A → B, C;  B → D, E;  C → F, G, H
//	L_REF: A{g3} B{g1,g3} C{g2,g3} D{g1} E{g1,g2} F{g2} G{g2} H{}
func figure3() *summary.ModuleSummary {
	proc := func(name string, globals []string, calls ...string) summary.ProcRecord {
		rec := summary.ProcRecord{Name: name, Module: "fig3.mc"}
		for _, g := range globals {
			rec.GlobalRefs = append(rec.GlobalRefs, summary.GlobalRef{Name: g, Freq: 10, Reads: 5, Writes: 5})
		}
		for _, c := range calls {
			rec.Calls = append(rec.Calls, summary.CallSite{Callee: c, Freq: 1})
		}
		return rec
	}
	return &summary.ModuleSummary{
		Module: "fig3.mc",
		Procs: []summary.ProcRecord{
			proc("A", []string{"g3"}, "B", "C"),
			proc("B", []string{"g1", "g3"}, "D", "E"),
			proc("C", []string{"g2", "g3"}, "F", "G", "H"),
			proc("D", []string{"g1"}),
			proc("E", []string{"g1", "g2"}),
			proc("F", []string{"g2"}),
			proc("G", []string{"g2"}),
			proc("H", nil),
		},
		Globals: []summary.GlobalInfo{
			{Name: "g1", Module: "fig3.mc", Size: 4, Defined: true, Scalar: true},
			{Name: "g2", Module: "fig3.mc", Size: 4, Defined: true, Scalar: true},
			{Name: "g3", Module: "fig3.mc", Size: 4, Defined: true, Scalar: true},
		},
	}
}

func buildFig3(t *testing.T) (*callgraph.Graph, *refsets.Sets) {
	t.Helper()
	g, err := callgraph.Build([]*summary.ModuleSummary{figure3()})
	if err != nil {
		t.Fatal(err)
	}
	g.EstimateCounts()
	eligible := refsets.EligibleGlobals(g)
	want := []string{"g1", "g2", "g3"}
	if !reflect.DeepEqual(eligible, want) {
		t.Fatalf("eligible = %v, want %v", eligible, want)
	}
	return g, refsets.Compute(g, eligible)
}

// TestPaperFigure3RefSets reproduces Table 1 of the paper.
func TestPaperFigure3RefSets(t *testing.T) {
	g, sets := buildFig3(t)

	want := map[string]struct{ l, c, p []string }{
		"A": {[]string{"g3"}, []string{"g1", "g2", "g3"}, nil},
		"B": {[]string{"g1", "g3"}, []string{"g1", "g2"}, []string{"g3"}},
		"C": {[]string{"g2", "g3"}, []string{"g2"}, []string{"g3"}},
		"D": {[]string{"g1"}, nil, []string{"g1", "g3"}},
		"E": {[]string{"g1", "g2"}, nil, []string{"g1", "g3"}},
		"F": {[]string{"g2"}, nil, []string{"g2", "g3"}},
		"G": {[]string{"g2"}, nil, []string{"g2", "g3"}},
		"H": {nil, nil, []string{"g2", "g3"}},
	}
	for name, w := range want {
		nd := g.NodeByName(name)
		if nd == nil {
			t.Fatalf("missing node %s", name)
		}
		if got := sets.LRefNames(nd.ID); !reflect.DeepEqual(got, w.l) {
			t.Errorf("L_REF[%s] = %v, want %v", name, got, w.l)
		}
		if got := sets.CRefNames(nd.ID); !reflect.DeepEqual(got, w.c) {
			t.Errorf("C_REF[%s] = %v, want %v", name, got, w.c)
		}
		if got := sets.PRefNames(nd.ID); !reflect.DeepEqual(got, w.p) {
			t.Errorf("P_REF[%s] = %v, want %v", name, got, w.p)
		}
	}
}

// webKey renders a web as "var:NODES" for comparison with Table 2.
func webKey(g *callgraph.Graph, w *webs.Web) string {
	var names []string
	for _, id := range w.NodeIDs() {
		names = append(names, g.Nodes[id].Name)
	}
	sort.Strings(names)
	key := w.Var + ":"
	for _, n := range names {
		key += n
	}
	return key
}

// TestPaperFigure3Webs reproduces Table 2's web structure: four webs —
// g3:{A,B,C}, g2:{C,F,G}, g1:{B,D,E}, g2:{E} — with the listed
// interferences.
func TestPaperFigure3Webs(t *testing.T) {
	g, sets := buildFig3(t)
	ws := webs.Identify(g, sets)
	if len(ws) != 4 {
		for _, w := range ws {
			t.Logf("web: %s", w)
		}
		t.Fatalf("found %d webs, want 4", len(ws))
	}
	got := make(map[string]*webs.Web)
	for _, w := range ws {
		got[webKey(g, w)] = w
		if err := webs.Validate(g, sets, w); err != nil {
			t.Errorf("invalid web: %v", err)
		}
	}
	for _, key := range []string{"g3:ABC", "g2:CFG", "g1:BDE", "g2:E"} {
		if got[key] == nil {
			t.Errorf("missing web %s (have %v)", key, keys(got))
		}
	}

	// Entries: Table 2's discussion names B as the entry of the g1 web;
	// by the same construction A enters g3's web, C enters g2's, E its own.
	entries := map[string]string{"g3:ABC": "A", "g2:CFG": "C", "g1:BDE": "B", "g2:E": "E"}
	for key, entry := range entries {
		w := got[key]
		if w == nil {
			continue
		}
		if len(w.Entries) != 1 || g.Nodes[w.Entries[0]].Name != entry {
			t.Errorf("web %s: entries = %v, want [%s]", key, w.Entries, entry)
		}
	}

	// Interferences (Table 2): 1↔2 (share C), 1↔3 (share B), 3↔4 (share E).
	type pair struct{ a, b string }
	interference := map[pair]bool{}
	for _, wa := range ws {
		for _, wb := range ws {
			if webs.Interfere(wa, wb) {
				interference[pair{webKey(g, wa), webKey(g, wb)}] = true
			}
		}
	}
	wantPairs := []pair{
		{"g3:ABC", "g2:CFG"}, {"g3:ABC", "g1:BDE"}, {"g1:BDE", "g2:E"},
	}
	for _, p := range wantPairs {
		if !interference[p] || !interference[pair{p.b, p.a}] {
			t.Errorf("expected interference between %s and %s", p.a, p.b)
		}
	}
	if interference[pair{"g2:CFG", "g1:BDE"}] {
		t.Errorf("g2:CFG and g1:BDE must not interfere")
	}
	if interference[pair{"g2:CFG", "g2:E"}] {
		t.Errorf("g2:CFG and g2:E must not interfere")
	}
}

// TestPaperFigure3Coloring reproduces Table 2's result that two registers
// suffice for all four webs, with interfering webs in different registers.
func TestPaperFigure3Coloring(t *testing.T) {
	g, sets := buildFig3(t)
	ws := webs.Identify(g, sets)
	webs.ComputePriorities(g, sets, ws)
	webs.Filter(ws, webs.FilterOptions{KeepAll: true})

	colored := webs.Color(ws, 2)
	if colored != 4 {
		for _, w := range ws {
			t.Logf("%s (priority %.1f, discarded=%v %s)", w, w.Priority, w.Discarded, w.DiscardReason)
		}
		t.Fatalf("colored %d webs with 2 registers, want 4", colored)
	}
	for _, wa := range ws {
		for _, wb := range ws {
			if webs.Interfere(wa, wb) && wa.Color == wb.Color {
				t.Errorf("interfering webs share register: %s / %s", wa, wb)
			}
		}
	}
	// Different webs of the same variable may land in different registers
	// (the paper notes Web 4 and Web 2, both for g2, get r1 and r2).
	var g2Colors []int
	for _, w := range ws {
		if w.Var == "g2" {
			g2Colors = append(g2Colors, w.Color)
		}
	}
	if len(g2Colors) == 2 && g2Colors[0] == g2Colors[1] {
		t.Logf("note: both g2 webs share a register (allowed, but the paper's example differs)")
	}
}

func keys(m map[string]*webs.Web) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
