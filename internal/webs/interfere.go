package webs

import (
	"sort"
)

// Considered returns the colorable candidates in priority order (highest
// priority first, ties broken by web ID). This is the canonical candidate
// ordering every allocation strategy consumes; the paper's priority
// coloring walks exactly this list.
func Considered(ws []*Web) []*Web { return considered(ws) }

// InterferenceGraph is the explicit web interference structure: the
// considered webs in priority order plus, per web, the indexes of every
// other considered web whose member set intersects it (§4.1.3 — two webs
// interfere when they share a call graph node, and interfering webs
// cannot be promoted to the same register).
//
// The paper's coloring never materializes this graph — it probes
// per-node colored-web lists on the fly. Strategies that want the
// liveness → interference → assignment staging of classical allocators
// build it once here and then work purely over adjacency.
type InterferenceGraph struct {
	// Webs holds the considered candidates in priority order.
	Webs []*Web
	// Adj[i] lists the indexes (into Webs) of the webs interfering with
	// Webs[i], ascending. The relation is symmetric by construction.
	Adj [][]int32
}

// Degree returns the interference degree of candidate i.
func (ig *InterferenceGraph) Degree(i int) int { return len(ig.Adj[i]) }

// BuildInterference constructs the explicit interference graph over the
// considered webs of ws. maxNodes bounds the call graph node ID space.
// Interference is found through per-node member lists rather than a
// pairwise member-set intersection scan, so the cost is linear in total
// membership plus the number of interfering pairs.
func BuildInterference(ws []*Web, maxNodes int) *InterferenceGraph {
	cs := considered(ws)
	ig := &InterferenceGraph{Webs: cs, Adj: make([][]int32, len(cs))}

	// Per-node lists of the considered webs containing that node.
	counts := make([]int, maxNodes)
	total := 0
	for _, w := range cs {
		w.Nodes.ForEach(func(id int) {
			counts[id]++
			total++
		})
	}
	slab := make([]int32, total)
	at := make([][]int32, maxNodes)
	off := 0
	for id, c := range counts {
		if c > 0 {
			at[id] = slab[off:off : off+c]
			off += c
		}
	}
	for i, w := range cs {
		w.Nodes.ForEach(func(id int) {
			at[id] = append(at[id], int32(i))
		})
	}

	// Gather each web's neighbors across its member nodes, deduplicated
	// with a stamp array (a node shared by webs i and j contributes the
	// pair once from each side, keeping Adj symmetric).
	stamp := make([]int, len(cs))
	for i, w := range cs {
		var adj []int32
		w.Nodes.ForEach(func(id int) {
			for _, j := range at[id] {
				if int(j) != i && stamp[j] != i+1 {
					stamp[j] = i + 1
					adj = append(adj, j)
				}
			}
		})
		sort.Slice(adj, func(x, y int) bool { return adj[x] < adj[y] })
		ig.Adj[i] = adj
	}
	return ig
}
