// Package census reproduces the §6.2 web statistics experiment: on a
// large program, count how many webs the eligible globals split into, how
// many survive the sparseness filters, and how many can be colored with 6
// reserved registers versus greedy coloring.
//
// The paper reports, for the 85000-line PA optimizer: 500 eligible
// globals → 1094 webs → 489 considered → 280 colored with 6 registers
// (greedy: 309, but missing some important webs). The absolute numbers
// depend on the program; the shape — webs outnumbering globals, a large
// discarded fraction, most considered webs colorable with few registers —
// is what this experiment checks.
package census

import (
	"context"
	"fmt"
	"io"

	"ipra"
	"ipra/internal/core"
	"ipra/internal/progen"
)

// Result carries the census numbers.
type Result struct {
	Procedures      int
	EligibleGlobals int
	WebsFound       int
	WebsConsidered  int
	ColoredSixRegs  int
	ColoredGreedy   int
	Clusters        int
	AvgClusterSize  float64

	// Exit codes under L2 and full optimization (must agree).
	ExitL2, ExitC int32
}

// Run generates the large program and analyzes it.
func Run(ctx context.Context, cfg progen.Config) (*Result, error) {
	mods := progen.Generate(cfg)
	var sources []ipra.Source
	for _, m := range mods {
		sources = append(sources, ipra.Source{Name: m.Name, Text: []byte(m.Text)})
	}

	// Behavioural check under the two extremes.
	l2, err := ipra.Build(ctx, sources, ipra.MustPreset("L2"))
	if err != nil {
		return nil, fmt.Errorf("census: L2 compile: %w", err)
	}
	rl2, err := l2.Run(0, false)
	if err != nil {
		return nil, fmt.Errorf("census: L2 run: %w", err)
	}
	pc, err := ipra.Build(ctx, sources, ipra.MustPreset("C"))
	if err != nil {
		return nil, fmt.Errorf("census: C compile: %w", err)
	}
	rc, err := pc.Run(0, false)
	if err != nil {
		return nil, fmt.Errorf("census: C run: %w", err)
	}

	res := &Result{
		Procedures:      len(pc.Analysis.Graph.Nodes),
		EligibleGlobals: pc.Analysis.Stats.EligibleGlobals,
		WebsFound:       pc.Analysis.Stats.WebsFound,
		WebsConsidered:  pc.Analysis.Stats.WebsConsidered,
		ColoredSixRegs:  pc.Analysis.Stats.WebsColored,
		Clusters:        pc.Analysis.Stats.Clusters,
		AvgClusterSize:  pc.Analysis.Stats.AvgClusterSize,
		ExitL2:          rl2.Exit,
		ExitC:           rc.Exit,
	}

	// Greedy coloring count.
	gopt := core.DefaultOptions()
	gopt.Promotion = core.PromoteGreedy
	gres, err := core.Analyze(ctx, pc.Summaries, gopt)
	if err != nil {
		return nil, fmt.Errorf("census: greedy analysis: %w", err)
	}
	res.ColoredGreedy = gres.Stats.WebsColored
	return res, nil
}

// Print runs the default census and renders it.
func Print(ctx context.Context, w io.Writer) error {
	res, err := Run(ctx, progen.DefaultCensusConfig())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Web census on a generated large program (cf. §6.2, PA optimizer:")
	fmt.Fprintln(w, "500 eligible globals -> 1094 webs -> 489 considered -> 280 colored)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "procedures:             %d\n", res.Procedures)
	fmt.Fprintf(w, "eligible globals:       %d\n", res.EligibleGlobals)
	fmt.Fprintf(w, "webs found:             %d\n", res.WebsFound)
	fmt.Fprintf(w, "webs considered:        %d\n", res.WebsConsidered)
	fmt.Fprintf(w, "colored (6 registers):  %d\n", res.ColoredSixRegs)
	fmt.Fprintf(w, "colored (greedy):       %d\n", res.ColoredGreedy)
	fmt.Fprintf(w, "clusters:               %d (average size %.1f)\n", res.Clusters, res.AvgClusterSize)
	fmt.Fprintf(w, "exit codes:             L2=%d, C=%d (must match)\n", res.ExitL2, res.ExitC)
	if res.ExitL2 != res.ExitC {
		return fmt.Errorf("census: behaviour mismatch between L2 and C")
	}
	return nil
}
