package cache

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ipra/internal/ir"
	"ipra/internal/summary"
)

func testModule(name string) *ir.Module {
	return &ir.Module{
		Name:    name,
		Globals: []*ir.Global{{Name: "g", Module: name, Size: 4, Defined: true, Scalar: true}},
	}
}

func testSummary(name string) *summary.ModuleSummary {
	return &summary.ModuleSummary{
		Module: name,
		Procs:  []summary.ProcRecord{{Name: "main", Module: name, CalleeSavesNeeded: 3}},
	}
}

func TestSourceKeyComponents(t *testing.T) {
	base := SourceKey("m.mc", []byte("int g;"), "v1")
	if SourceKey("m.mc", []byte("int g;"), "v1") != base {
		t.Error("identical inputs must hash identically")
	}
	if SourceKey("n.mc", []byte("int g;"), "v1") == base {
		t.Error("name must be part of the key")
	}
	if SourceKey("m.mc", []byte("int h;"), "v1") == base {
		t.Error("source text must be part of the key")
	}
	if SourceKey("m.mc", []byte("int g;"), "v2") == base {
		t.Error("fingerprint must be part of the key")
	}
	// Length-prefixing keeps field boundaries unambiguous.
	if SourceKey("ab", []byte("c"), "") == SourceKey("a", []byte("bc"), "") {
		t.Error("shifting bytes between name and text must change the key")
	}
}

func TestGetReturnsIsolatedCopies(t *testing.T) {
	c := New(8)
	k := SourceKey("m.mc", []byte("x"), "")
	if err := c.Put(k, testModule("m.mc"), testSummary("m.mc")); err != nil {
		t.Fatal(err)
	}

	m1, s1, ok := c.Get(k)
	if !ok {
		t.Fatal("expected hit")
	}
	// Corrupt the first copies; later hits must be unaffected.
	m1.Globals[0].Name = "corrupted"
	s1.Procs[0].CalleeSavesNeeded = 99

	m2, s2, ok := c.Get(k)
	if !ok {
		t.Fatal("expected second hit")
	}
	if m2.Globals[0].Name != "g" {
		t.Errorf("cached module shares memory with a previous Get: global = %q", m2.Globals[0].Name)
	}
	if s2.Procs[0].CalleeSavesNeeded != 3 {
		t.Errorf("cached summary shares memory with a previous Get: need = %d", s2.Procs[0].CalleeSavesNeeded)
	}
}

func TestMissAndStats(t *testing.T) {
	c := New(8)
	if _, _, ok := c.Get(SourceKey("absent", nil, "")); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	k := SourceKey("m.mc", []byte("x"), "")
	if err := c.Put(k, testModule("m.mc"), testSummary("m.mc")); err != nil {
		t.Fatal(err)
	}
	c.Get(k)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", s)
	}
	c.Reset()
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("after Reset, stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	ka := SourceKey("a", nil, "")
	kb := SourceKey("b", nil, "")
	kc := SourceKey("c", nil, "")
	for _, k := range []Key{ka, kb} {
		if err := c.Put(k, testModule("m"), testSummary("m")); err != nil {
			t.Fatal(err)
		}
	}
	c.Get(ka) // b is now least recently used
	if err := c.Put(kc, testModule("m"), testSummary("m")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(kb); ok {
		t.Error("least recently used entry b should have been evicted")
	}
	if _, _, ok := c.Get(ka); !ok {
		t.Error("recently used entry a should have survived")
	}
	if _, _, ok := c.Get(kc); !ok {
		t.Error("new entry c should be present")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
}

// TestLRUOrderUnderChurn drives a larger cache through interleaved Puts,
// re-Puts, and Gets and checks that eviction follows exact LRU order — the
// invariant the intrusive list must preserve without the old full-scan.
func TestLRUOrderUnderChurn(t *testing.T) {
	const n = 8
	c := New(n)
	key := func(i int) Key { return SourceKey(fmt.Sprintf("m%d", i), nil, "") }
	for i := 0; i < n; i++ {
		if err := c.Put(key(i), testModule("m"), testSummary("m")); err != nil {
			t.Fatal(err)
		}
	}
	// Touch half the entries (mix of Get and re-Put); the untouched half
	// must then be evicted first, in their original insertion order.
	for i := 0; i < n; i += 2 {
		if i%4 == 0 {
			c.Get(key(i))
		} else if err := c.Put(key(i), testModule("m"), testSummary("m")); err != nil {
			t.Fatal(err)
		}
	}
	for round, i := 0, 1; i < n; round, i = round+1, i+2 {
		if err := c.Put(key(n+round), testModule("m"), testSummary("m")); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := c.Get(key(i)); ok {
			t.Fatalf("entry %d survived; expected it evicted on round %d", i, round)
		}
	}
	for i := 0; i < n; i += 2 {
		if _, _, ok := c.Get(key(i)); !ok {
			t.Errorf("recently used entry %d was evicted", i)
		}
	}
	if s := c.Stats(); s.Entries != n {
		t.Errorf("entries = %d, want %d", s.Entries, n)
	}
}

func TestEntryFileRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.p1")
	m, ms := testModule("m.mc"), testSummary("m.mc")
	if err := WriteEntryFile(path, m, ms); err != nil {
		t.Fatal(err)
	}
	gm, gms, err := ReadEntryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gm, m) || !reflect.DeepEqual(gms, ms) {
		t.Error("entry file roundtrip lost data")
	}
	// Decoded copies must be private.
	gm.Globals[0].Name = "corrupted"
	gm2, _, err := ReadEntryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gm2.Globals[0].Name != "g" {
		t.Error("reread entry shares memory with a previous read")
	}
	if _, _, err := ReadEntryFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing entry file must error")
	}
}

// TestStatsConcurrent polls Stats while workers hammer Get and Put — the
// race detector flags any counter read that is not synchronized with the
// hot-path increments. It also checks the final tallies add up.
func TestStatsConcurrent(t *testing.T) {
	c := New(8)
	m, ms := testModule("m"), testSummary("m")
	const workers, opsPerWorker = 4, 200

	stop := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Stats()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				k := SourceKey(fmt.Sprintf("m%d", (w*opsPerWorker+i)%16), nil, "")
				if _, _, ok := c.Get(k); !ok {
					if err := c.Put(k, m, ms); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	poller.Wait()

	s := c.Stats()
	if s.Hits+s.Misses != workers*opsPerWorker {
		t.Errorf("hits %d + misses %d != %d lookups", s.Hits, s.Misses, workers*opsPerWorker)
	}
	if s.Entries > 8 {
		t.Errorf("cache holds %d entries, max 8", s.Entries)
	}
}

// BenchmarkPutFullCache measures Put into a cache at capacity, where every
// insert evicts. The pre-LRU-list implementation rescanned all entries on
// each eviction (O(n) per Put); the intrusive list pops the tail in O(1),
// which this benchmark demonstrates at a size where the scan dominated.
func BenchmarkPutFullCache(b *testing.B) {
	const size = 4096
	c := New(size)
	m, ms := testModule("m"), testSummary("m")
	keys := make([]Key, size+b.N)
	for i := range keys {
		keys[i] = SourceKey(fmt.Sprintf("m%d", i), nil, "")
	}
	for i := 0; i < size; i++ {
		if err := c.Put(keys[i], m, ms); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(keys[size+i], m, ms); err != nil {
			b.Fatal(err)
		}
	}
}
