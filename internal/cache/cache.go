// Package cache implements the content-addressed phase-1/summary cache.
//
// The compiler first phase and the summary computation depend only on a
// module's source text (and on the phase-1 implementation itself) — never
// on the analyzer configuration, which only steers the second phase. The
// benchmark harness therefore recompiles byte-identical phase-1 output
// once per configuration (L2 plus the six Table 4 columns), and the
// profile-guided configurations compile everything twice more. Keying the
// phase-1 module and its summary record on a content hash of the source
// lets all of those compiles after the first skip straight to the
// analyzer.
//
// Entries are stored gob-encoded and decoded on every hit, so each caller
// receives private copies: the optimizer mutates IR in place, and a cache
// that handed out shared pointers would let one compilation corrupt
// another. Decoding is the same work Module.Clone already does once per
// compile, so a hit still saves the parse, semantic analysis, IR
// generation, and the two optimized scratch clones behind a summary.
package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"

	"ipra/internal/ir"
	"ipra/internal/summary"
)

// Key identifies one module's phase-1 artifacts by content.
type Key [sha256.Size]byte

// SourceKey hashes a module's name and source text together with a
// fingerprint of everything else the cached artifacts depend on (the
// phase-1 implementation version and any configuration that reaches
// phase 1). Two sources collide only if every component matches.
func SourceKey(name string, text []byte, fingerprint string) Key {
	h := sha256.New()
	var n [8]byte
	put := func(b []byte) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	put([]byte(fingerprint))
	put([]byte(name))
	put(text)
	var k Key
	h.Sum(k[:0])
	return k
}

// entry is one cached module: the gob bytes plus an LRU clock reading.
type entry struct {
	data    []byte
	lastUse uint64
}

// payload is what gets encoded into an entry.
type payload struct {
	Module  *ir.Module
	Summary *summary.ModuleSummary
}

// Stats counts cache traffic.
type Stats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// Cache is a bounded, concurrency-safe phase-1/summary cache.
type Cache struct {
	mu      sync.Mutex
	max     int
	clock   uint64
	entries map[Key]*entry
	stats   Stats
}

// DefaultMaxEntries bounds the process-wide cache: comfortably above the
// benchmark suite's module count, small enough that even large modules
// keep the cache in the tens of megabytes.
const DefaultMaxEntries = 256

// New returns a cache holding at most max entries (<=0 selects
// DefaultMaxEntries). The least recently used entry is evicted on
// overflow.
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	return &Cache{max: max, entries: make(map[Key]*entry)}
}

// Get returns private copies of the cached module and summary, or ok =
// false on a miss. The returned values share no memory with the cache or
// with any other caller.
func (c *Cache) Get(k Key) (*ir.Module, *summary.ModuleSummary, bool) {
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, nil, false
	}
	c.clock++
	e.lastUse = c.clock
	c.stats.Hits++
	data := e.data
	c.mu.Unlock()

	// Decode outside the lock: it is the expensive part of a hit.
	var p payload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		// A decode failure means the entry is corrupt; drop it and report
		// a miss so the caller recompiles.
		c.mu.Lock()
		delete(c.entries, k)
		c.stats.Entries = len(c.entries)
		c.mu.Unlock()
		return nil, nil, false
	}
	return p.Module, p.Summary, true
}

// Put stores the module and summary under k. The values are encoded
// immediately, so the caller remains free to mutate its copies afterward.
func (c *Cache) Put(k Key, m *ir.Module, ms *summary.ModuleSummary) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&payload{Module: m, Summary: ms}); err != nil {
		return fmt.Errorf("cache: encode %s: %w", m.Name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.entries[k] = &entry{data: buf.Bytes(), lastUse: c.clock}
	for len(c.entries) > c.max {
		var oldest Key
		var oldestUse uint64
		first := true
		for key, e := range c.entries {
			if first || e.lastUse < oldestUse {
				oldest, oldestUse, first = key, e.lastUse, false
			}
		}
		delete(c.entries, oldest)
		c.stats.Evictions++
	}
	c.stats.Entries = len(c.entries)
	return nil
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// Reset empties the cache and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*entry)
	c.stats = Stats{}
	c.clock = 0
}
