// Package cache implements the content-addressed phase-1/summary cache.
//
// The compiler first phase and the summary computation depend only on a
// module's source text (and on the phase-1 implementation itself) — never
// on the analyzer configuration, which only steers the second phase. The
// benchmark harness therefore recompiles byte-identical phase-1 output
// once per configuration (L2 plus the six Table 4 columns), and the
// profile-guided configurations compile everything twice more. Keying the
// phase-1 module and its summary record on a content hash of the source
// lets all of those compiles after the first skip straight to the
// analyzer.
//
// Entries are stored in the flat wire format (internal/wire) and decoded
// on every hit, so each caller receives private copies: the optimizer
// mutates IR in place, and a cache that handed out shared pointers would
// let one compilation corrupt another. Decoding is a single linear walk
// over length-prefixed sections — no reflection — so a hit costs little
// more than the allocations of the copies themselves.
//
// The same wire payload doubles as the on-disk phase-1 record of the
// incremental build directory (WriteEntryFile / ReadEntryFile), so the
// in-memory cache and the persistent store never disagree about what a
// phase-1 artifact is.
package cache

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ipra/internal/ir"
	"ipra/internal/summary"
	"ipra/internal/telemetry"
	"ipra/internal/wire"
)

// Key identifies one module's phase-1 artifacts by content.
type Key [sha256.Size]byte

// Hex returns the key in lowercase hexadecimal, the form the incremental
// build manifest stores.
func (k Key) Hex() string { return fmt.Sprintf("%x", k[:]) }

// SourceKey hashes a module's name and source text together with a
// fingerprint of everything else the cached artifacts depend on (the
// phase-1 implementation version and any configuration that reaches
// phase 1). Two sources collide only if every component matches.
func SourceKey(name string, text []byte, fingerprint string) Key {
	h := sha256.New()
	var n [8]byte
	put := func(b []byte) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	put([]byte(fingerprint))
	put([]byte(name))
	put(text)
	var k Key
	h.Sum(k[:0])
	return k
}

// entry is one cached module: the wire bytes plus its position in the
// intrusive LRU list (front = most recently used, back = eviction victim).
type entry struct {
	key        Key
	data       []byte
	prev, next *entry
}

// Wire format identity of a cache entry (also the incremental build dir's
// phase-1 record). Bump the version whenever the body layout — the module
// encoding, the summary encoding, or their order — changes.
const (
	wireKind    = "cache-entry"
	wireVersion = 1
)

// EncodeEntry serializes a phase-1 module and its summary into the cache's
// wire payload format: one wire file whose body is the module followed by
// the summary, sharing a single string table. The bytes are
// self-contained: DecodeEntry (or a hit on an in-memory entry)
// reconstructs private copies.
func EncodeEntry(m *ir.Module, ms *summary.ModuleSummary) ([]byte, error) {
	e := wire.NewEncoder(wireKind, wireVersion)
	ir.AppendModule(e, m)
	summary.AppendSummary(e, ms)
	return e.Finish(), nil
}

// DecodeEntry is the inverse of EncodeEntry.
func DecodeEntry(data []byte) (*ir.Module, *summary.ModuleSummary, error) {
	d, err := wire.NewDecoder(data, wireKind, wireVersion)
	if err != nil {
		return nil, nil, fmt.Errorf("cache: decode entry: %w", err)
	}
	m := ir.ReadModule(d)
	ms := summary.ReadSummary(d)
	if err := d.Finish(); err != nil {
		return nil, nil, fmt.Errorf("cache: decode entry: %w", err)
	}
	return m, ms, nil
}

// WriteEntryFile persists a phase-1 entry to the given path (the
// incremental build directory's per-module phase-1 record).
func WriteEntryFile(path string, m *ir.Module, ms *summary.ModuleSummary) error {
	data, err := EncodeEntry(m, ms)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadEntryFile loads a phase-1 entry persisted by WriteEntryFile.
func ReadEntryFile(path string) (*ir.Module, *summary.ModuleSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	m, ms, err := DecodeEntry(data)
	if err != nil {
		return nil, nil, fmt.Errorf("cache: %s: %w", path, err)
	}
	return m, ms, nil
}

// Stats is a consistent snapshot of the traffic counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// Cache is a bounded, concurrency-safe phase-1/summary cache.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*entry
	// head is the most recently used entry, tail the least; both nil when
	// the cache is empty. Maintaining the list makes eviction O(1): Put
	// pops the tail instead of rescanning every entry for the oldest
	// clock reading.
	head, tail *entry

	// Traffic counters are atomics, not fields guarded by mu: Stats may be
	// polled while parallel compile workers hammer Get/Put, and a plain
	// read would race with the increments.
	hits, misses, evictions atomic.Uint64
}

// DefaultMaxEntries bounds the process-wide cache: comfortably above the
// benchmark suite's module count, small enough that even large modules
// keep the cache in the tens of megabytes.
const DefaultMaxEntries = 256

// New returns a cache holding at most max entries (<=0 selects
// DefaultMaxEntries). The least recently used entry is evicted on
// overflow.
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	return &Cache{max: max, entries: make(map[Key]*entry)}
}

// unlink removes e from the LRU list. Callers must hold c.mu.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry. Callers must hold c.mu.
func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get returns private copies of the cached module and summary, or ok =
// false on a miss. The returned values share no memory with the cache or
// with any other caller.
func (c *Cache) Get(k Key) (*ir.Module, *summary.ModuleSummary, bool) {
	return c.get(context.Background(), k)
}

// get is Get with the build's telemetry context threaded to the
// serialization counters (cache.decode_ns / cache.decode_bytes).
func (c *Cache) get(ctx context.Context, k Key) (*ir.Module, *summary.ModuleSummary, bool) {
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, nil, false
	}
	c.unlink(e)
	c.pushFront(e)
	data := e.data
	c.mu.Unlock()
	c.hits.Add(1)

	// Decode outside the lock: it is the expensive part of a hit.
	start := time.Now()
	m, ms, err := DecodeEntry(data)
	telemetry.Count(ctx, "cache.decode_ns", time.Since(start).Nanoseconds())
	telemetry.Count(ctx, "cache.decode_bytes", int64(len(data)))
	if err != nil {
		// A decode failure means the entry is corrupt; drop it and report
		// a miss so the caller recompiles.
		c.mu.Lock()
		if cur := c.entries[k]; cur != nil {
			c.unlink(cur)
			delete(c.entries, k)
		}
		c.mu.Unlock()
		return nil, nil, false
	}
	return m, ms, true
}

// GetCtx is Get with the build's telemetry threaded through: hits and
// misses land on the context's tracer as cache.hits / cache.misses (the
// process-wide Stats counters tick regardless).
func (c *Cache) GetCtx(ctx context.Context, k Key) (*ir.Module, *summary.ModuleSummary, bool) {
	m, ms, ok := c.get(ctx, k)
	if ok {
		telemetry.Count(ctx, "cache.hits", 1)
	} else {
		telemetry.Count(ctx, "cache.misses", 1)
	}
	return m, ms, ok
}

// Put stores the module and summary under k. The values are encoded
// immediately, so the caller remains free to mutate its copies afterward.
func (c *Cache) Put(k Key, m *ir.Module, ms *summary.ModuleSummary) error {
	_, err := c.put(context.Background(), k, m, ms)
	return err
}

// PutCtx is Put with the build's telemetry threaded through: evictions
// this insertion forced land on the context's tracer as cache.evictions,
// and the serialization cost as cache.encode_ns / cache.encode_bytes.
func (c *Cache) PutCtx(ctx context.Context, k Key, m *ir.Module, ms *summary.ModuleSummary) error {
	evicted, err := c.put(ctx, k, m, ms)
	if evicted > 0 {
		telemetry.Count(ctx, "cache.evictions", evicted)
	}
	return err
}

// put inserts the entry and returns how many victims were evicted.
func (c *Cache) put(ctx context.Context, k Key, m *ir.Module, ms *summary.ModuleSummary) (evicted int64, err error) {
	start := time.Now()
	data, err := EncodeEntry(m, ms)
	if err != nil {
		return 0, err
	}
	telemetry.Count(ctx, "cache.encode_ns", time.Since(start).Nanoseconds())
	telemetry.Count(ctx, "cache.encode_bytes", int64(len(data)))
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[k]; e != nil {
		e.data = data
		c.unlink(e)
		c.pushFront(e)
		return 0, nil
	}
	e := &entry{key: k, data: data}
	c.entries[k] = e
	c.pushFront(e)
	for len(c.entries) > c.max {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.evictions.Add(1)
		evicted++
	}
	return evicted, nil
}

// Stats returns a snapshot of the traffic counters. It is safe to call
// concurrently with Get and Put.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// Reset empties the cache and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*entry)
	c.head, c.tail = nil, nil
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}
