package ir

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(200)
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(199)
	for _, i := range []int{0, 63, 64, 199} {
		if !s.Has(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Count() != 4 {
		t.Errorf("count = %d", s.Count())
	}
	s.Clear(63)
	if s.Has(63) || s.Count() != 3 {
		t.Error("clear failed")
	}
}

func TestBitSetProperties(t *testing.T) {
	f := func(xs []uint16, ys []uint16) bool {
		a := NewBitSet(1 << 16)
		b := NewBitSet(1 << 16)
		in := map[int]bool{}
		for _, x := range xs {
			a.Set(int(x))
			in[int(x)] = true
		}
		for _, y := range ys {
			b.Set(int(y))
			in[int(y)] = true
		}
		changed := a.OrWith(b)
		// a must now contain the union.
		for k := range in {
			if !a.Has(k) {
				return false
			}
		}
		if a.Count() != len(in) {
			return false
		}
		// A second OrWith with the same set never changes anything.
		if a.OrWith(b) {
			return false
		}
		_ = changed
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitSetOps(t *testing.T) {
	a := NewBitSet(300)
	b := NewBitSet(300)
	a.Set(1)
	a.Set(70)
	a.Set(299)
	b.Set(70)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects missed shared element 70")
	}
	b.Clear(70)
	b.Set(2)
	if a.Intersects(b) {
		t.Error("Intersects reported disjoint sets as overlapping")
	}
	// Different universe sizes: only the common prefix is compared.
	short := NewBitSet(10)
	short.Set(1)
	if !a.Intersects(short) || !short.Intersects(a) {
		t.Error("Intersects failed across different set lengths")
	}

	var got []int
	a.ForEach(func(i int) { got = append(got, i) })
	want := []int{1, 70, 299}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach = %v, want %v", got, want)
	}
	if el := a.Elems(nil); !reflect.DeepEqual(el, want) {
		t.Errorf("Elems = %v, want %v", el, want)
	}

	c := a.Clone()
	if !c.Equal(a) {
		t.Error("Clone not Equal to source")
	}
	c.Set(5)
	if a.Has(5) {
		t.Error("Clone aliases the source storage")
	}
	if c.Equal(a) {
		t.Error("Equal missed a differing element")
	}

	if a.Empty() {
		t.Error("non-empty set reported Empty")
	}
	if !NewBitSet(300).Empty() {
		t.Error("fresh set not Empty")
	}

	f := NewBitSet(130)
	f.Fill(130)
	if f.Count() != 130 {
		t.Errorf("Fill(130): Count = %d", f.Count())
	}
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if !f.Has(i) {
			t.Errorf("Fill(130) missing %d", i)
		}
	}
	f2 := NewBitSet(128)
	f2.Fill(128)
	if f2.Count() != 128 {
		t.Errorf("Fill(128): Count = %d", f2.Count())
	}
}

// buildDiamond creates:
//
//	b0: v1 = 1;           branch v1 -> b1 | b2
//	b1: v2 = v1 + v1;     jump b3
//	b2: v3 = 7;  v2 = v3; jump b3
//	b3: ret v2
func buildDiamond() *Func {
	f := &Func{Name: "diamond"}
	v1, v2, v3 := f.NewReg(), f.NewReg(), f.NewReg()
	f.Blocks = []*Block{
		{ID: 0, Instrs: []Instr{{Op: Const, Dst: v1, Imm: 1}},
			Term: Term{Kind: TermBranch, Cond: v1, True: 1, False: 2}},
		{ID: 1, Instrs: []Instr{{Op: Add, Dst: v2, A: v1, B: v1}},
			Term: Term{Kind: TermJump, True: 3}},
		{ID: 2, Instrs: []Instr{{Op: Const, Dst: v3, Imm: 7}, {Op: Copy, Dst: v2, A: v3}},
			Term: Term{Kind: TermJump, True: 3}},
		{ID: 3, Term: Term{Kind: TermReturn, Val: v2, HasVal: true}},
	}
	f.Recompute()
	return f
}

func TestRecomputeEdges(t *testing.T) {
	f := buildDiamond()
	if !reflect.DeepEqual(f.Blocks[0].Succs, []int{1, 2}) {
		t.Errorf("b0 succs = %v", f.Blocks[0].Succs)
	}
	if !reflect.DeepEqual(f.Blocks[3].Preds, []int{1, 2}) {
		t.Errorf("b3 preds = %v", f.Blocks[3].Preds)
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := buildDiamond().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	f := buildDiamond()
	f.Blocks[1].Term = Term{Kind: TermJump, True: 99}
	if err := f.Validate(); err == nil {
		t.Error("out-of-range target accepted")
	}

	f = buildDiamond()
	f.Blocks[0].Term.Cond = 0
	if err := f.Validate(); err == nil {
		t.Error("branch without condition accepted")
	}

	f = buildDiamond()
	f.Blocks[1].Instrs[0].A = 999
	if err := f.Validate(); err == nil {
		t.Error("out-of-range register accepted")
	}

	f = buildDiamond()
	f.Blocks[2].ID = 7
	if err := f.Validate(); err == nil {
		t.Error("misnumbered block accepted")
	}
}

func TestLiveness(t *testing.T) {
	f := buildDiamond()
	lv := ComputeLiveness(f)
	v1, v2 := 1, 2
	// v1 is live into b1 (used there) but dead into b2.
	if !lv.In[1].Has(v1) {
		t.Error("v1 should be live into b1")
	}
	if lv.In[2].Has(v1) {
		t.Error("v1 should be dead into b2")
	}
	// v2 is live into b3 from both sides.
	if !lv.In[3].Has(v2) {
		t.Error("v2 should be live into b3")
	}
	if lv.In[0].Has(v2) {
		t.Error("v2 should not be live into entry")
	}
}

func TestLivenessLoop(t *testing.T) {
	// b0: v1=0 -> b1;  b1: v2=v1+v1; branch v2 -> b1 | b2;  b2: ret v1
	f := &Func{Name: "loop"}
	v1, v2 := f.NewReg(), f.NewReg()
	f.Blocks = []*Block{
		{ID: 0, Instrs: []Instr{{Op: Const, Dst: v1, Imm: 0}}, Term: Term{Kind: TermJump, True: 1}},
		{ID: 1, Instrs: []Instr{{Op: Add, Dst: v2, A: v1, B: v1}},
			Term: Term{Kind: TermBranch, Cond: v2, True: 1, False: 2}},
		{ID: 2, Term: Term{Kind: TermReturn, Val: v1, HasVal: true}},
	}
	f.Recompute()
	lv := ComputeLiveness(f)
	// v1 must be live around the back edge.
	if !lv.Out[1].Has(int(v1)) || !lv.In[1].Has(int(v1)) {
		t.Error("v1 must stay live through the loop")
	}
}

func TestUsesAndDefs(t *testing.T) {
	cases := []struct {
		in   Instr
		uses []Reg
		def  Reg
	}{
		{Instr{Op: Const, Dst: 5, Imm: 1}, nil, 5},
		{Instr{Op: Copy, Dst: 5, A: 3}, []Reg{3}, 5},
		{Instr{Op: Add, Dst: 5, A: 3, B: 4}, []Reg{3, 4}, 5},
		{Instr{Op: Neg, Dst: 5, A: 3}, []Reg{3}, 5},
		{Instr{Op: Load, Dst: 5, Mem: MemRef{Kind: MemGlobal, Sym: "g", Size: 4}}, nil, 5},
		{Instr{Op: Load, Dst: 5, Mem: MemRef{Kind: MemPtr, Base: 7, Size: 4}}, []Reg{7}, 5},
		{Instr{Op: Store, A: 3, Mem: MemRef{Kind: MemPtr, Base: 7, Size: 4}}, []Reg{3, 7}, 0},
		{Instr{Op: Store, A: 3, Mem: MemRef{Kind: MemFrame, Size: 4}}, []Reg{3}, 0},
		{Instr{Op: Call, Dst: 5, Callee: "f", Args: []Reg{1, 2}}, []Reg{1, 2}, 5},
		{Instr{Op: Call, IndirectCall: true, A: 9, Args: []Reg{1}}, []Reg{9, 1}, 0},
		{Instr{Op: AddrGlobal, Dst: 5, Callee: "g"}, nil, 5},
		{Instr{Op: AddrFrame, Dst: 5, Imm: 8}, nil, 5},
	}
	for i, tc := range cases {
		got := tc.in.Uses(nil)
		if !reflect.DeepEqual(got, tc.uses) {
			t.Errorf("case %d (%s): uses = %v, want %v", i, tc.in.Op, got, tc.uses)
		}
		if d := tc.in.Def(); d != tc.def {
			t.Errorf("case %d (%s): def = %v, want %v", i, tc.in.Op, d, tc.def)
		}
	}
}

func TestSideEffects(t *testing.T) {
	if (&Instr{Op: Add}).HasSideEffects() {
		t.Error("add has no side effects")
	}
	for _, op := range []Op{Store, Call, Div, Rem} {
		if !(&Instr{Op: op}).HasSideEffects() {
			t.Errorf("%s must have side effects", op)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := &Module{Name: "m.mc", Funcs: []*Func{buildDiamond()},
		Globals: []*Global{{Name: "g", Size: 4, Defined: true, Init: []byte{1, 2, 3, 4}, Scalar: true}}}
	c := m.Clone()
	c.Funcs[0].Blocks[0].Instrs[0].Imm = 99
	c.Globals[0].Init[0] = 0xff
	if m.Funcs[0].Blocks[0].Instrs[0].Imm == 99 {
		t.Error("clone shares instruction storage")
	}
	if m.Globals[0].Init[0] == 0xff {
		t.Error("clone shares init storage")
	}
}

func TestSerializeRoundtrip(t *testing.T) {
	f := buildDiamond()
	f.Pinned = map[Reg]uint8{3: 17}
	m := &Module{
		Name:  "m.mc",
		Funcs: []*Func{f},
		Globals: []*Global{{
			Name: "g", Module: "m.mc", Size: 4, Defined: true,
			Init: []byte{9, 8, 7, 6}, Scalar: true,
			Relocs: []Reloc{{Offset: 0, Target: "other"}},
		}},
		ExternFuncs: []string{"putchar"},
	}
	path := t.TempDir() + "/m.ir"
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || len(got.Funcs) != 1 || len(got.Globals) != 1 {
		t.Fatalf("roundtrip lost structure: %+v", got)
	}
	if got.Funcs[0].Pinned[3] != 17 {
		t.Error("pinned registers lost in roundtrip")
	}
	if !reflect.DeepEqual(got.Globals[0], m.Globals[0]) {
		t.Errorf("global mismatch: %+v vs %+v", got.Globals[0], m.Globals[0])
	}
	if err := got.Funcs[0].Validate(); err != nil {
		t.Error(err)
	}
}

func TestPin(t *testing.T) {
	f := &Func{Name: "f"}
	r := f.Pin(17)
	if !f.IsPinned(r) {
		t.Error("pinned register not recorded")
	}
	if f.IsPinned(f.NewReg()) {
		t.Error("fresh register reported pinned")
	}
}
