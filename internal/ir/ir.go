// Package ir defines the machine-independent intermediate representation
// exchanged between the two compiler phases.
//
// In the paper's organization (§2, Figure 1) the compiler first phase writes
// an intermediate representation of each module to a file, and the compiler
// second phase — which may run on modules in any order — reads it back and
// performs code generation under the program analyzer's register allocation
// directives. This package is that representation: non-SSA three-address
// code over virtual registers, organized into basic blocks.
package ir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register number. Register 0 is "no register".
type Reg int32

// String renders a virtual register.
func (r Reg) String() string {
	if r == 0 {
		return "_"
	}
	return fmt.Sprintf("v%d", int32(r))
}

// Op is an IR operation.
type Op int

// IR operations.
const (
	Nop Op = iota

	Const // Dst = Imm
	Copy  // Dst = A

	// Integer arithmetic (32-bit, wrapping).
	Add // Dst = A + B
	Sub
	Mul
	Div // signed
	Rem // signed
	And
	Or
	Xor
	Shl // B masked to 5 bits
	Shr // arithmetic shift right
	Neg // Dst = -A
	Not // Dst = ^A

	// Comparisons produce 0 or 1.
	CmpEQ
	CmpNE
	CmpLT // signed
	CmpLE
	CmpGT
	CmpGE

	// Memory.
	Load  // Dst = mem[Mem]
	Store // mem[Mem] = A

	// Address formation.
	AddrGlobal // Dst = &global(Sym) + Imm
	AddrFrame  // Dst = &frame[Imm]

	Call // Dst = Callee(Args...) or (*A)(Args...) when IndirectCall
)

var opNames = [...]string{
	Nop: "nop", Const: "const", Copy: "copy",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Neg: "neg", Not: "not",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge",
	Load: "load", Store: "store",
	AddrGlobal: "addrg", AddrFrame: "addrf",
	Call: "call",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsCommutative reports whether the binary op commutes.
func (o Op) IsCommutative() bool {
	switch o {
	case Add, Mul, And, Or, Xor, CmpEQ, CmpNE:
		return true
	}
	return false
}

// IsBinary reports whether the op takes two register operands A, B.
func (o Op) IsBinary() bool {
	switch o {
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE:
		return true
	}
	return false
}

// IsCompare reports whether the op is a comparison.
func (o Op) IsCompare() bool {
	switch o {
	case CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE:
		return true
	}
	return false
}

// MemKind classifies a memory reference.
type MemKind int

// Memory reference kinds.
const (
	MemNone   MemKind = iota
	MemGlobal         // named global variable (Sym, +Off for members/elements)
	MemFrame          // function frame slot at offset Off
	MemPtr            // through pointer register Base, +Off
)

// MemRef describes the address and width of a Load or Store.
type MemRef struct {
	Kind MemKind
	Sym  string // qualified global name (MemGlobal)
	Base Reg    // pointer register (MemPtr)
	Off  int32
	Size uint8 // access width in bytes: 1, 2, or 4

	// Singleton marks an access to a simple scalar variable of size 1/2/4 —
	// the accesses Table 5 of the paper counts. Array elements, struct
	// members, and pointer dereferences are not singletons (§6.3).
	Singleton bool
}

func (m MemRef) String() string {
	base := ""
	switch m.Kind {
	case MemGlobal:
		base = "@" + m.Sym
	case MemFrame:
		base = "frame"
	case MemPtr:
		base = m.Base.String()
	default:
		return "<none>"
	}
	s := fmt.Sprintf("[%s%+d].%d", base, m.Off, m.Size)
	if m.Singleton {
		s += "!"
	}
	return s
}

// Instr is one three-address instruction.
type Instr struct {
	Op  Op
	Dst Reg
	A   Reg
	B   Reg
	Imm int64
	Mem MemRef

	// Call fields.
	Callee       string // qualified name for direct calls
	IndirectCall bool   // function address in A
	Args         []Reg
	ResultVoid   bool // call has no result even though Dst may be 0
}

// Uses appends the registers read by the instruction to dst and returns it.
func (in *Instr) Uses(dst []Reg) []Reg {
	switch in.Op {
	case Const, AddrGlobal, AddrFrame, Nop:
	case Load:
		if in.Mem.Kind == MemPtr {
			dst = append(dst, in.Mem.Base)
		}
	case Store:
		dst = append(dst, in.A)
		if in.Mem.Kind == MemPtr {
			dst = append(dst, in.Mem.Base)
		}
	case Call:
		if in.IndirectCall {
			dst = append(dst, in.A)
		}
		dst = append(dst, in.Args...)
	case Copy, Neg, Not:
		dst = append(dst, in.A)
	default:
		if in.Op.IsBinary() {
			dst = append(dst, in.A, in.B)
		} else {
			dst = append(dst, in.A)
		}
	}
	return dst
}

// Def returns the register written by the instruction, or 0.
func (in *Instr) Def() Reg {
	switch in.Op {
	case Store, Nop:
		return 0
	case Call:
		return in.Dst // may be 0 for void calls
	default:
		return in.Dst
	}
}

// HasSideEffects reports whether the instruction must be preserved even if
// its result is unused.
func (in *Instr) HasSideEffects() bool {
	switch in.Op {
	case Store, Call:
		return true
	case Div, Rem:
		return true // may trap on divide-by-zero
	}
	return false
}

func (in *Instr) String() string {
	switch in.Op {
	case Nop:
		return "nop"
	case Const:
		return fmt.Sprintf("%s = const %d", in.Dst, in.Imm)
	case Copy:
		return fmt.Sprintf("%s = %s", in.Dst, in.A)
	case Neg, Not:
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	case Load:
		return fmt.Sprintf("%s = load %s", in.Dst, in.Mem)
	case Store:
		return fmt.Sprintf("store %s, %s", in.Mem, in.A)
	case AddrGlobal:
		return fmt.Sprintf("%s = addrg @%s%+d", in.Dst, in.Callee, in.Imm)
	case AddrFrame:
		return fmt.Sprintf("%s = addrf %d", in.Dst, in.Imm)
	case Call:
		var args []string
		for _, a := range in.Args {
			args = append(args, a.String())
		}
		target := in.Callee
		if in.IndirectCall {
			target = "*" + in.A.String()
		}
		if in.Dst == 0 {
			return fmt.Sprintf("call %s(%s)", target, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s = call %s(%s)", in.Dst, target, strings.Join(args, ", "))
	default:
		if in.Op.IsBinary() {
			return fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
		}
		return fmt.Sprintf("%s = %s %s %s imm=%d", in.Dst, in.Op, in.A, in.B, in.Imm)
	}
}

// TermKind identifies the block terminator form.
type TermKind int

// Terminator kinds.
const (
	TermJump TermKind = iota
	TermBranch
	TermReturn
)

// Term is a block terminator.
type Term struct {
	Kind   TermKind
	Cond   Reg // TermBranch: branch to True if Cond != 0
	True   int // target block ID
	False  int
	Val    Reg  // TermReturn value
	HasVal bool // TermReturn returns a value
}

func (t Term) String() string {
	switch t.Kind {
	case TermJump:
		return fmt.Sprintf("jump b%d", t.True)
	case TermBranch:
		return fmt.Sprintf("branch %s ? b%d : b%d", t.Cond, t.True, t.False)
	case TermReturn:
		if t.HasVal {
			return fmt.Sprintf("ret %s", t.Val)
		}
		return "ret"
	}
	return "?"
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Term   Term

	// LoopDepth is the syntactic loop nesting depth, used for the paper's
	// compile-time frequency heuristics (§3, §6): a reference or call at
	// depth d is weighted 10^d.
	LoopDepth int

	// Preds and Succs are filled by Func.Recompute.
	Preds []int
	Succs []int
}

// Func is one IR function.
type Func struct {
	Name   string // qualified (linker) name
	Module string
	Static bool

	NParams int
	Params  []Reg // virtual registers carrying the incoming parameters

	// ResultVoid is true for void functions.
	ResultVoid bool

	Blocks    []*Block // Blocks[0] is the entry
	NextReg   Reg      // next unused virtual register number
	FrameSize int32    // bytes of frame memory (arrays, structs, escaped locals)

	// Pinned maps virtual registers bound to specific physical registers.
	// The compiler second phase uses pinned registers for web-promoted
	// globals (§5): the register's value is shared with callees, so
	// writes to a pinned register are observable side effects and its
	// contents may change across calls.
	Pinned map[Reg]uint8
}

// Pin binds a fresh virtual register to physical register phys.
func (f *Func) Pin(phys uint8) Reg {
	r := f.NewReg()
	if f.Pinned == nil {
		f.Pinned = make(map[Reg]uint8)
	}
	f.Pinned[r] = phys
	return r
}

// IsPinned reports whether r is bound to a physical register.
func (f *Func) IsPinned(r Reg) bool {
	_, ok := f.Pinned[r]
	return ok
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	f.NextReg++
	return f.NextReg
}

// Block returns the block with the given ID (IDs index Blocks).
func (f *Func) Block(id int) *Block { return f.Blocks[id] }

// Recompute rebuilds predecessor/successor lists.
func (f *Func) Recompute() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		switch b.Term.Kind {
		case TermJump:
			b.Succs = append(b.Succs, b.Term.True)
		case TermBranch:
			b.Succs = append(b.Succs, b.Term.True)
			if b.Term.False != b.Term.True {
				b.Succs = append(b.Succs, b.Term.False)
			}
		}
		for _, s := range b.Succs {
			f.Blocks[s].Preds = append(f.Blocks[s].Preds, b.ID)
		}
	}
}

// String dumps the function in a readable form.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d, frame=%d)\n", f.Name, f.NParams, f.FrameSize)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d: (depth %d)\n", blk.ID, blk.LoopDepth)
		for i := range blk.Instrs {
			fmt.Fprintf(&b, "\t%s\n", blk.Instrs[i].String())
		}
		fmt.Fprintf(&b, "\t%s\n", blk.Term.String())
	}
	return b.String()
}

// Global is a module-level variable as seen by the linker and the program
// analyzer.
type Global struct {
	Name      string // qualified name
	Module    string
	Size      int32
	Init      []byte  // nil for extern declarations
	Relocs    []Reloc // address words inside Init
	Defined   bool
	Static    bool
	AddrTaken bool // aliased: ineligible for promotion (§4.1.2)
	Scalar    bool // simple variable of size 1/2/4 (promotion candidate)
}

// Reloc is a link-time patch inside global init data.
type Reloc struct {
	Offset int32
	Target string
	Addend int32
}

// Module is the intermediate file contents for one compilation unit.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	// ExternFuncs lists functions referenced but not defined here.
	ExternFuncs []string
}

// FuncByName returns the function with the given qualified name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// GlobalByName returns the global with the given qualified name, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Validate checks structural invariants: every block ID indexes Blocks,
// terminator targets exist, register numbers are in range, and the entry
// block is Blocks[0]. It returns the first violation found.
func (f *Func) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("%s: block %d has ID %d", f.Name, i, b.ID)
		}
		check := func(id int) error {
			if id < 0 || id >= len(f.Blocks) {
				return fmt.Errorf("%s: b%d: branch target b%d out of range", f.Name, b.ID, id)
			}
			return nil
		}
		switch b.Term.Kind {
		case TermJump:
			if err := check(b.Term.True); err != nil {
				return err
			}
		case TermBranch:
			if err := check(b.Term.True); err != nil {
				return err
			}
			if err := check(b.Term.False); err != nil {
				return err
			}
			if b.Term.Cond == 0 {
				return fmt.Errorf("%s: b%d: branch with no condition", f.Name, b.ID)
			}
		case TermReturn:
			if b.Term.HasVal && b.Term.Val == 0 {
				return fmt.Errorf("%s: b%d: return value register missing", f.Name, b.ID)
			}
		}
		var uses []Reg
		for j := range b.Instrs {
			in := &b.Instrs[j]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if u <= 0 || u > f.NextReg {
					return fmt.Errorf("%s: b%d[%d]: use of invalid register %d", f.Name, b.ID, j, u)
				}
			}
			if d := in.Def(); d < 0 || d > f.NextReg {
				return fmt.Errorf("%s: b%d[%d]: def of invalid register %d", f.Name, b.ID, j, d)
			}
		}
	}
	return nil
}
