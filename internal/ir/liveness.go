package ir

// BitSet is a dense bit set over virtual register numbers (or any small
// non-negative integers). The zero value of a properly sized BitSet is
// empty.
type BitSet []uint64

// NewBitSet returns a bit set able to hold values in [0, n].
func NewBitSet(n int) BitSet { return make(BitSet, (n+64)/64) }

// Set adds i to the set.
func (s BitSet) Set(i int) { s[i/64] |= 1 << uint(i%64) }

// Clear removes i from the set.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << uint(i%64) }

// Has reports whether i is in the set.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }

// OrWith unions other into s, reporting whether s changed.
func (s BitSet) OrWith(other BitSet) bool {
	changed := false
	for i := range s {
		old := s[i]
		s[i] |= other[i]
		if s[i] != old {
			changed = true
		}
	}
	return changed
}

// Copy copies other into s.
func (s BitSet) Copy(other BitSet) { copy(s, other) }

// Count returns the number of elements.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Liveness holds per-block live-in/live-out sets for a function's virtual
// registers.
type Liveness struct {
	In  []BitSet
	Out []BitSet
}

// ComputeLiveness runs the classic backward dataflow over the CFG. The
// function's Preds/Succs must be current (call Recompute first).
func ComputeLiveness(f *Func) *Liveness {
	n := len(f.Blocks)
	nr := int(f.NextReg)
	lv := &Liveness{In: make([]BitSet, n), Out: make([]BitSet, n)}
	use := make([]BitSet, n)
	def := make([]BitSet, n)
	for i := range lv.In {
		lv.In[i] = NewBitSet(nr)
		lv.Out[i] = NewBitSet(nr)
		use[i] = NewBitSet(nr)
		def[i] = NewBitSet(nr)
	}

	var scratch []Reg
	for _, b := range f.Blocks {
		u, d := use[b.ID], def[b.ID]
		for k := range b.Instrs {
			in := &b.Instrs[k]
			scratch = in.Uses(scratch[:0])
			for _, r := range scratch {
				if !d.Has(int(r)) {
					u.Set(int(r))
				}
			}
			if dr := in.Def(); dr != 0 {
				d.Set(int(dr))
			}
		}
		if b.Term.Kind == TermBranch && b.Term.Cond != 0 {
			if !d.Has(int(b.Term.Cond)) {
				u.Set(int(b.Term.Cond))
			}
		}
		if b.Term.Kind == TermReturn && b.Term.HasVal {
			if !d.Has(int(b.Term.Val)) {
				u.Set(int(b.Term.Val))
			}
		}
	}

	// Iterate to fixpoint, visiting blocks in reverse order for fast
	// convergence on reducible CFGs.
	changed := true
	tmp := NewBitSet(nr)
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[i]
			for _, s := range b.Succs {
				if out.OrWith(lv.In[s]) {
					changed = true
				}
			}
			// in = use ∪ (out - def)
			tmp.Copy(out)
			for w := range tmp {
				tmp[w] &^= def[i][w]
				tmp[w] |= use[i][w]
			}
			if !equalBits(tmp, lv.In[i]) {
				lv.In[i].Copy(tmp)
				changed = true
			}
		}
	}
	return lv
}

func equalBits(a, b BitSet) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
