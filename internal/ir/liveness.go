package ir

// Liveness holds per-block live-in/live-out sets for a function's virtual
// registers.
type Liveness struct {
	In  []BitSet
	Out []BitSet
}

// ComputeLiveness runs the classic backward dataflow over the CFG. The
// function's Preds/Succs must be current (call Recompute first).
func ComputeLiveness(f *Func) *Liveness {
	n := len(f.Blocks)
	nr := int(f.NextReg)
	lv := &Liveness{In: make([]BitSet, n), Out: make([]BitSet, n)}
	use := make([]BitSet, n)
	def := make([]BitSet, n)
	for i := range lv.In {
		lv.In[i] = NewBitSet(nr)
		lv.Out[i] = NewBitSet(nr)
		use[i] = NewBitSet(nr)
		def[i] = NewBitSet(nr)
	}

	var scratch []Reg
	for _, b := range f.Blocks {
		u, d := use[b.ID], def[b.ID]
		for k := range b.Instrs {
			in := &b.Instrs[k]
			scratch = in.Uses(scratch[:0])
			for _, r := range scratch {
				if !d.Has(int(r)) {
					u.Set(int(r))
				}
			}
			if dr := in.Def(); dr != 0 {
				d.Set(int(dr))
			}
		}
		if b.Term.Kind == TermBranch && b.Term.Cond != 0 {
			if !d.Has(int(b.Term.Cond)) {
				u.Set(int(b.Term.Cond))
			}
		}
		if b.Term.Kind == TermReturn && b.Term.HasVal {
			if !d.Has(int(b.Term.Val)) {
				u.Set(int(b.Term.Val))
			}
		}
	}

	// Iterate to fixpoint, visiting blocks in reverse order for fast
	// convergence on reducible CFGs.
	changed := true
	tmp := NewBitSet(nr)
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[i]
			for _, s := range b.Succs {
				if out.OrWith(lv.In[s]) {
					changed = true
				}
			}
			// in = use ∪ (out - def)
			tmp.Copy(out)
			for w := range tmp {
				tmp[w] &^= def[i][w]
				tmp[w] |= use[i][w]
			}
			if !tmp.Equal(lv.In[i]) {
				lv.In[i].Copy(tmp)
				changed = true
			}
		}
	}
	return lv
}
