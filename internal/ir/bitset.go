package ir

import "math/bits"

// BitSet is a dense bit set over virtual register numbers, call graph node
// IDs, or any small non-negative integers. The zero value of a properly
// sized BitSet is empty.
//
// Beyond liveness analysis, the whole-program analyzer keys BitSets by
// call graph node ID for web membership, cluster membership, and traversal
// visited sets: on large call graphs the word-wise operations (union,
// intersection test, population count, iteration) replace per-element map
// traffic on the analyzer's hottest paths.
type BitSet []uint64

// NewBitSet returns a bit set able to hold values in [0, n].
func NewBitSet(n int) BitSet { return make(BitSet, (n+64)/64) }

// Set adds i to the set.
func (s BitSet) Set(i int) { s[i/64] |= 1 << uint(i%64) }

// Clear removes i from the set.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << uint(i%64) }

// Has reports whether i is in the set.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }

// OrWith unions other into s, reporting whether s changed.
func (s BitSet) OrWith(other BitSet) bool {
	changed := false
	for i := range s {
		old := s[i]
		s[i] |= other[i]
		if s[i] != old {
			changed = true
		}
	}
	return changed
}

// Copy copies other into s.
func (s BitSet) Copy(other BitSet) { copy(s, other) }

// Clone returns an independent copy of s.
func (s BitSet) Clone() BitSet {
	out := make(BitSet, len(s))
	copy(out, s)
	return out
}

// Count returns the number of elements.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s BitSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and other share any element, word-wise —
// the web interference test of §4.1.3.
func (s BitSet) Intersects(other BitSet) bool {
	n := len(s)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if s[i]&other[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and other hold the same elements (both sized
// over the same universe).
func (s BitSet) Equal(other BitSet) bool {
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element in ascending order.
func (s BitSet) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			fn(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Elems appends the elements in ascending order to dst and returns it.
func (s BitSet) Elems(dst []int) []int {
	for wi, w := range s {
		for w != 0 {
			dst = append(dst, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Fill adds every value in [0, n) to the set.
func (s BitSet) Fill(n int) {
	for i := 0; i < n/64; i++ {
		s[i] = ^uint64(0)
	}
	if rem := n % 64; rem != 0 {
		s[n/64] |= (1 << uint(rem)) - 1
	}
}

// BitArena carves bit sets out of large zeroed slabs, batching the
// allocations a construction loop would otherwise pay once per set (web
// identification builds tens of thousands of node sets per analysis).
// Carved sets are permanently backed — the arena only batches allocation
// and never reclaims or reuses memory — so they may outlive the arena
// freely. An arena must not be shared across goroutines; the zero value
// is ready to use.
type BitArena struct {
	free []uint64
}

// New returns a zeroed bit set able to hold values in [0, n], carved from
// the arena's current slab. The capacity is clipped so appends through
// the set can never touch a sibling's words.
func (a *BitArena) New(n int) BitSet {
	w := (n + 64) / 64
	if len(a.free) < w {
		// Size chunks at several sets' worth so a typical construction
		// pays one allocation for many sets, without holding more than
		// one chunk of slack.
		chunk := 8 * w
		if chunk < 1024 {
			chunk = 1024
		}
		a.free = make([]uint64, chunk)
	}
	s := BitSet(a.free[:w:w])
	a.free = a.free[w:]
	return s
}
