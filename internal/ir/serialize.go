package ir

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
)

// WriteFile saves a module as an intermediate file (the artifact the
// compiler first phase hands to the second phase, §2).
func WriteFile(path string, m *Module) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("ir: encode %s: %w", m.Name, err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadFile loads an intermediate file.
func ReadFile(path string) (*Module, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Module
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, fmt.Errorf("ir: decode %s: %w", path, err)
	}
	return &m, nil
}

// Clone deep-copies a module. The optimizer mutates IR in place, and the
// driver compiles the same phase-1 output under several configurations, so
// each compilation works on its own copy.
func (m *Module) Clone() *Module {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(fmt.Sprintf("ir: clone encode: %v", err))
	}
	var out Module
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		panic(fmt.Sprintf("ir: clone decode: %v", err))
	}
	return &out
}
