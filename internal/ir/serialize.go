package ir

import (
	"fmt"
	"os"
	"sort"

	"ipra/internal/wire"
)

// Wire format identity of a standalone intermediate file. Bump the version
// whenever the body layout below changes shape or meaning.
const (
	wireKind    = "module"
	wireVersion = 1
)

// EncodeModule serializes a module as a standalone wire file.
func EncodeModule(m *Module) []byte {
	e := wire.NewEncoder(wireKind, wireVersion)
	AppendModule(e, m)
	return e.Finish()
}

// DecodeModule is the inverse of EncodeModule.
func DecodeModule(data []byte) (*Module, error) {
	d, err := wire.NewDecoder(data, wireKind, wireVersion)
	if err != nil {
		return nil, err
	}
	m := ReadModule(d)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteFile saves a module as an intermediate file (the artifact the
// compiler first phase hands to the second phase, §2).
func WriteFile(path string, m *Module) error {
	return os.WriteFile(path, EncodeModule(m), 0o644)
}

// ReadFile loads an intermediate file.
func ReadFile(path string) (*Module, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeModule(data)
	if err != nil {
		return nil, fmt.Errorf("ir: decode %s: %w", path, err)
	}
	return m, nil
}

// AppendModule encodes m into an in-progress wire body, so composite
// artifacts (the cache entry format) can embed a module without nested
// framing and share one string table with their other fields.
func AppendModule(e *wire.Encoder, m *Module) {
	e.Str(m.Name)
	e.U(uint64(len(m.Funcs)))
	for _, f := range m.Funcs {
		appendFunc(e, f)
	}
	e.U(uint64(len(m.Globals)))
	for _, g := range m.Globals {
		appendGlobal(e, g)
	}
	e.Strs(m.ExternFuncs)
}

func appendFunc(e *wire.Encoder, f *Func) {
	e.Str(f.Name)
	e.Str(f.Module)
	e.Bool(f.Static)
	e.U(uint64(f.NParams))
	appendRegs(e, f.Params)
	e.Bool(f.ResultVoid)
	e.I(int64(f.NextReg))
	e.I(int64(f.FrameSize))
	// Pinned registers in ascending register order: maps must never leak
	// iteration order into the bytes.
	e.U(uint64(len(f.Pinned)))
	if len(f.Pinned) > 0 {
		regs := make([]int, 0, len(f.Pinned))
		for r := range f.Pinned {
			regs = append(regs, int(r))
		}
		sort.Ints(regs)
		for _, r := range regs {
			e.I(int64(r))
			e.Byte(f.Pinned[Reg(r)])
		}
	}
	e.U(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		appendBlock(e, b)
	}
}

func appendBlock(e *wire.Encoder, b *Block) {
	e.U(uint64(b.ID))
	e.U(uint64(b.LoopDepth))
	e.U(uint64(len(b.Instrs)))
	for i := range b.Instrs {
		appendInstr(e, &b.Instrs[i])
	}
	e.U(uint64(b.Term.Kind))
	e.I(int64(b.Term.Cond))
	e.I(int64(b.Term.True))
	e.I(int64(b.Term.False))
	e.I(int64(b.Term.Val))
	e.Bool(b.Term.HasVal)
	e.Ints(b.Preds)
	e.Ints(b.Succs)
}

func appendInstr(e *wire.Encoder, in *Instr) {
	e.U(uint64(in.Op))
	e.I(int64(in.Dst))
	e.I(int64(in.A))
	e.I(int64(in.B))
	e.I(in.Imm)
	e.U(uint64(in.Mem.Kind))
	e.Str(in.Mem.Sym)
	e.I(int64(in.Mem.Base))
	e.I(int64(in.Mem.Off))
	e.Byte(in.Mem.Size)
	e.Bool(in.Mem.Singleton)
	e.Str(in.Callee)
	e.Bool(in.IndirectCall)
	appendRegs(e, in.Args)
	e.Bool(in.ResultVoid)
}

func appendGlobal(e *wire.Encoder, g *Global) {
	e.Str(g.Name)
	e.Str(g.Module)
	e.I(int64(g.Size))
	// Init's nil/non-nil distinction is meaningful (nil marks an extern
	// declaration), so it is encoded explicitly.
	e.Bool(g.Init != nil)
	if g.Init != nil {
		e.Bytes(g.Init)
	}
	e.U(uint64(len(g.Relocs)))
	for _, r := range g.Relocs {
		e.I(int64(r.Offset))
		e.Str(r.Target)
		e.I(int64(r.Addend))
	}
	e.Bool(g.Defined)
	e.Bool(g.Static)
	e.Bool(g.AddrTaken)
	e.Bool(g.Scalar)
}

func appendRegs(e *wire.Encoder, rs []Reg) {
	e.U(uint64(len(rs)))
	for _, r := range rs {
		e.I(int64(r))
	}
}

// ReadModule decodes a module from an in-progress wire body (the inverse
// of AppendModule). Errors are reported through the decoder's sticky
// error; the caller checks Finish (or Err) afterward.
func ReadModule(d *wire.Decoder) *Module {
	m := &Module{Name: d.Str()}
	n := d.Count(1)
	for i := 0; i < n; i++ {
		m.Funcs = append(m.Funcs, readFunc(d))
	}
	n = d.Count(1)
	for i := 0; i < n; i++ {
		m.Globals = append(m.Globals, readGlobal(d))
	}
	m.ExternFuncs = d.Strs()
	return m
}

func readFunc(d *wire.Decoder) *Func {
	f := &Func{
		Name:    d.Str(),
		Module:  d.Str(),
		Static:  d.Bool(),
		NParams: int(d.U()),
	}
	f.Params = readRegs(d)
	f.ResultVoid = d.Bool()
	f.NextReg = Reg(d.I())
	f.FrameSize = int32(d.I())
	if n := d.Count(2); n > 0 {
		f.Pinned = make(map[Reg]uint8, n)
		for i := 0; i < n; i++ {
			r := Reg(d.I())
			f.Pinned[r] = d.Byte()
		}
	}
	n := d.Count(1)
	for i := 0; i < n; i++ {
		f.Blocks = append(f.Blocks, readBlock(d))
	}
	return f
}

func readBlock(d *wire.Decoder) *Block {
	b := &Block{
		ID:        int(d.U()),
		LoopDepth: int(d.U()),
	}
	n := d.Count(1)
	if n > 0 {
		b.Instrs = make([]Instr, n)
		for i := range b.Instrs {
			readInstr(d, &b.Instrs[i])
		}
	}
	b.Term.Kind = TermKind(d.U())
	b.Term.Cond = Reg(d.I())
	b.Term.True = int(d.I())
	b.Term.False = int(d.I())
	b.Term.Val = Reg(d.I())
	b.Term.HasVal = d.Bool()
	b.Preds = d.Ints()
	b.Succs = d.Ints()
	return b
}

func readInstr(d *wire.Decoder, in *Instr) {
	in.Op = Op(d.U())
	in.Dst = Reg(d.I())
	in.A = Reg(d.I())
	in.B = Reg(d.I())
	in.Imm = d.I()
	in.Mem.Kind = MemKind(d.U())
	in.Mem.Sym = d.Str()
	in.Mem.Base = Reg(d.I())
	in.Mem.Off = int32(d.I())
	in.Mem.Size = d.Byte()
	in.Mem.Singleton = d.Bool()
	in.Callee = d.Str()
	in.IndirectCall = d.Bool()
	in.Args = readRegs(d)
	in.ResultVoid = d.Bool()
}

func readGlobal(d *wire.Decoder) *Global {
	g := &Global{
		Name:   d.Str(),
		Module: d.Str(),
		Size:   int32(d.I()),
	}
	if d.Bool() {
		g.Init = d.Bytes()
		if g.Init == nil {
			g.Init = []byte{}
		}
	}
	if n := d.Count(3); n > 0 {
		g.Relocs = make([]Reloc, n)
		for i := range g.Relocs {
			g.Relocs[i] = Reloc{
				Offset: int32(d.I()),
				Target: d.Str(),
				Addend: int32(d.I()),
			}
		}
	}
	g.Defined = d.Bool()
	g.Static = d.Bool()
	g.AddrTaken = d.Bool()
	g.Scalar = d.Bool()
	return g
}

func readRegs(d *wire.Decoder) []Reg {
	n := d.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]Reg, n)
	for i := range out {
		out[i] = Reg(d.I())
	}
	return out
}

// Clone deep-copies a module with a direct structural copy. The optimizer
// mutates IR in place, and the driver compiles the same phase-1 output
// under several configurations, so each compilation works on its own copy.
func (m *Module) Clone() *Module {
	out := &Module{Name: m.Name}
	if m.Funcs != nil {
		out.Funcs = make([]*Func, len(m.Funcs))
		for i, f := range m.Funcs {
			out.Funcs[i] = f.clone()
		}
	}
	if m.Globals != nil {
		out.Globals = make([]*Global, len(m.Globals))
		for i, g := range m.Globals {
			cp := *g
			cp.Init = append([]byte(nil), g.Init...)
			cp.Relocs = append([]Reloc(nil), g.Relocs...)
			out.Globals[i] = &cp
		}
	}
	out.ExternFuncs = append([]string(nil), m.ExternFuncs...)
	return out
}

func (f *Func) clone() *Func {
	cp := *f
	cp.Params = append([]Reg(nil), f.Params...)
	if f.Pinned != nil {
		cp.Pinned = make(map[Reg]uint8, len(f.Pinned))
		for r, p := range f.Pinned {
			cp.Pinned[r] = p
		}
	}
	if f.Blocks != nil {
		cp.Blocks = make([]*Block, len(f.Blocks))
		for i, b := range f.Blocks {
			nb := *b
			nb.Instrs = append([]Instr(nil), b.Instrs...)
			for j := range nb.Instrs {
				if nb.Instrs[j].Args != nil {
					nb.Instrs[j].Args = append([]Reg(nil), nb.Instrs[j].Args...)
				}
			}
			nb.Preds = append([]int(nil), b.Preds...)
			nb.Succs = append([]int(nil), b.Succs...)
			cp.Blocks[i] = &nb
		}
	}
	return &cp
}
