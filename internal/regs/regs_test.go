package regs

import (
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := Of(3, 5, 18)
	if !s.Has(3) || !s.Has(5) || !s.Has(18) || s.Has(4) {
		t.Error("membership wrong")
	}
	if s.Count() != 3 {
		t.Errorf("count = %d", s.Count())
	}
	s = s.Remove(5)
	if s.Has(5) || s.Count() != 2 {
		t.Error("remove failed")
	}
	s = s.Add(5)
	if !s.Has(5) {
		t.Error("add failed")
	}
	if got := Of(1, 2).Union(Of(2, 3)); got != Of(1, 2, 3) {
		t.Errorf("union = %s", got)
	}
	if got := Of(1, 2, 3).Intersect(Of(2, 3, 4)); got != Of(2, 3) {
		t.Errorf("intersect = %s", got)
	}
	if got := Of(1, 2, 3).Minus(Of(2)); got != Of(1, 3) {
		t.Errorf("minus = %s", got)
	}
	if !Set(0).Empty() || Of(1).Empty() {
		t.Error("empty predicate wrong")
	}
}

func TestRegsOrdered(t *testing.T) {
	rs := Of(18, 3, 10).Regs()
	want := []uint8{3, 10, 18}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("Regs() = %v, want %v", rs, want)
		}
	}
}

func TestStandardSetsDisjoint(t *testing.T) {
	if !StdCalleeSaved().Intersect(StdCallerSaved()).Empty() {
		t.Error("callee-saves and caller-saves overlap")
	}
	if StdCalleeSaved().Count() != 16 {
		t.Errorf("callee-saves count = %d, want 16 (as on PA-RISC)", StdCalleeSaved().Count())
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x, y, z := Set(a), Set(b), Set(c)
		// De Morgan-ish identities over Minus/Union/Intersect.
		if x.Minus(y.Union(z)) != x.Minus(y).Minus(z) {
			return false
		}
		if x.Intersect(y.Union(z)) != x.Intersect(y).Union(x.Intersect(z)) {
			return false
		}
		// Union/intersect commute.
		return x.Union(y) == y.Union(x) && x.Intersect(y) == y.Intersect(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := Of(3, 18).String(); got != "{r3,r18}" {
		t.Errorf("String = %q", got)
	}
	if got := Set(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// TestCountMatchesLoop property-checks the bits.OnesCount32-based Count
// against the classic Kernighan clear-lowest-bit loop it replaced.
func TestCountMatchesLoop(t *testing.T) {
	loopCount := func(s Set) int {
		n := 0
		for v := uint32(s); v != 0; v &= v - 1 {
			n++
		}
		return n
	}
	f := func(a uint32) bool { return Set(a).Count() == loopCount(Set(a)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, s := range []Set{0, Of(0), Of(31), StdCalleeSaved(), StdCallerSaved(), ^Set(0)} {
		if s.Count() != loopCount(s) {
			t.Errorf("Count(%s) = %d, want %d", s, s.Count(), loopCount(s))
		}
	}
}
