// Package regs provides the register-set type shared by the program
// analyzer's spill code motion, the program database, and the compiler
// second phase's register allocator.
package regs

import (
	"fmt"
	"math/bits"
	"strings"

	"ipra/internal/parv"
)

// Set is a bitmask over PARV's 32 general registers.
type Set uint32

// Of builds a set from register numbers.
func Of(rs ...uint8) Set {
	var s Set
	for _, r := range rs {
		s |= 1 << r
	}
	return s
}

// StdCalleeSaved is the conventional callee-saves set (r3–r18).
func StdCalleeSaved() Set { return Of(parv.CalleeSaved()...) }

// StdCallerSaved is the conventional caller-saves set.
func StdCallerSaved() Set { return Of(parv.CallerSaved()...) }

// Has reports membership.
func (s Set) Has(r uint8) bool { return s&(1<<r) != 0 }

// Add returns s ∪ {r}.
func (s Set) Add(r uint8) Set { return s | 1<<r }

// Remove returns s ∖ {r}.
func (s Set) Remove(r uint8) Set { return s &^ (1 << r) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s ∖ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s == 0 }

// Count returns the number of members.
func (s Set) Count() int { return bits.OnesCount32(uint32(s)) }

// Regs returns the members in ascending order.
func (s Set) Regs() []uint8 {
	var out []uint8
	for r := uint8(0); r < 32; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders the set as {r3,r4,...}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, r := range s.Regs() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "r%d", r)
	}
	b.WriteByte('}')
	return b.String()
}
