package ipra

import (
	"context"
	"fmt"
	"testing"

	"ipra/internal/progen"
)

// TestDifferentialGeneratedPrograms is the pipeline's strongest
// correctness check: for a battery of generated multi-module programs
// (random call DAGs, subsystem-localized globals, statics, recursion,
// indirect calls), every compiler configuration must produce a program
// with identical observable behaviour. Any disagreement is a
// miscompilation in the optimizer, the analyzer's directives, or the code
// generator.
func TestDifferentialGeneratedPrograms(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := progen.Config{
				Seed:           seed,
				Modules:        3,
				ProcsPerModule: 8,
				Globals:        40,
				SubsystemSize:  4,
				Recursion:      true,
				IndirectCalls:  seed%2 == 0,
				Statics:        true,
				LoopIters:      2,
			}
			mods := progen.Generate(cfg)
			var sources []Source
			for _, m := range mods {
				sources = append(sources, Source{Name: m.Name, Text: []byte(m.Text)})
			}

			base, err := Build(context.Background(), sources, MustPreset("L2"))
			if err != nil {
				t.Fatalf("L2 compile: %v", err)
			}
			want, err := base.Run(100_000_000, false)
			if err != nil {
				t.Fatalf("L2 run: %v", err)
			}

			for _, c := range Configs() {
				// Every fuzz input is also run through the allocation
				// invariant verifier; a violation fails the build here.
				opts := []BuildOption{WithVerify()}
				if c.WantProfile {
					opts = append(opts, WithProfile(100_000_000))
				}
				p, err := Build(context.Background(), sources, c, opts...)
				if err != nil {
					t.Fatalf("%s compile: %v", c.Name, err)
				}
				got, err := p.Run(100_000_000, false)
				if err != nil {
					t.Fatalf("%s run: %v", c.Name, err)
				}
				if got.Exit != want.Exit || got.Output != want.Output {
					t.Errorf("%s: exit/output (%d,%q) differ from L2 (%d,%q)",
						c.Name, got.Exit, got.Output, want.Exit, want.Output)
				}
			}
		})
	}
}

// genSources builds the standard fuzz corpus program for a seed.
func genSources(seed int64) []Source {
	mods := progen.Generate(progen.Config{
		Seed:           seed,
		Modules:        3,
		ProcsPerModule: 8,
		Globals:        40,
		SubsystemSize:  4,
		Recursion:      true,
		IndirectCalls:  seed%2 == 0,
		Statics:        true,
		LoopIters:      2,
	})
	var sources []Source
	for _, m := range mods {
		sources = append(sources, Source{Name: m.Name, Text: []byte(m.Text)})
	}
	return sources
}

// TestProgenDeterministic ensures generated programs are reproducible (the
// census and fuzz corpora must be stable).
func TestProgenDeterministic(t *testing.T) {
	cfg := progen.DefaultCensusConfig()
	a := progen.Generate(cfg)
	b := progen.Generate(cfg)
	if len(a) != len(b) {
		t.Fatal("module counts differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Text != b[i].Text {
			t.Fatalf("module %d differs between runs", i)
		}
	}
}

// TestGeneratedProgramScale sanity-checks that the census configuration
// produces the intended scale.
func TestGeneratedProgramScale(t *testing.T) {
	mods := progen.Generate(progen.DefaultCensusConfig())
	if len(mods) != 10 {
		t.Errorf("modules = %d", len(mods))
	}
	total := 0
	for _, m := range mods {
		total += len(m.Text)
	}
	if total < 50_000 {
		t.Errorf("census program only %d bytes of source", total)
	}
}
