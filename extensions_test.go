package ipra

import (
	"context"
	"testing"
)

// libSources is a "run-time library" program: an exported API over private
// static state, plus an internal helper. Analyzed as a partial call graph
// (§7.2), only the statics stay promotable and the exported procedures
// must tolerate unknown callers.
func libSources() []Source {
	return []Source{
		{Name: "lib.mc", Text: []byte(`
static int cachedKey;
static int cachedVal;
int hits;

static int probe(int k) {
	if (k == cachedKey) { hits++; return cachedVal; }
	return -1;
}

int lookup(int k) { return probe(k); }

void install(int k, int v) {
	cachedKey = k;
	cachedVal = v;
}

int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 500; i++) {
		install(i & 7, i);
		sum += lookup(i & 7);
	}
	return (sum + hits) & 255;
}
`)},
	}
}

// TestPartialCallGraphConservative checks §7.2: under partial-program
// assumptions, exported globals are not promoted (external code may touch
// them) while statics still are, and the compiled code stays correct.
func TestPartialCallGraphConservative(t *testing.T) {
	full := MustPreset("C")
	fullProg, err := Build(context.Background(), libSources(), full)
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := fullProg.Run(0, false)
	if err != nil {
		t.Fatal(err)
	}

	partial := MustPreset("C")
	partial.Analyzer.PartialProgram = true
	partialProg, err := Build(context.Background(), libSources(), partial)
	if err != nil {
		t.Fatal(err)
	}
	partialRes, err := partialProg.Run(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if partialRes.Exit != fullRes.Exit {
		t.Fatalf("partial-mode exit %d != full-mode exit %d", partialRes.Exit, fullRes.Exit)
	}

	// Under full analysis, `hits` is eligible; under partial it is not.
	fullEligible := asSet(fullProg.DB.EligibleGlobals)
	partEligible := asSet(partialProg.DB.EligibleGlobals)
	if !fullEligible["hits"] {
		t.Error("full analysis should find `hits` eligible")
	}
	if partEligible["hits"] {
		t.Error("partial analysis must not promote exported global `hits`")
	}
	if !partEligible["lib.mc:cachedKey"] {
		t.Errorf("partial analysis should keep statics eligible: %v", partialProg.DB.EligibleGlobals)
	}

	// The synthetic external caller exists and exported procedures are
	// treated as reachable from it.
	ext := partialProg.Analysis.Graph.NodeByName("<external>")
	if ext == nil {
		t.Fatal("no synthetic external caller in the partial call graph")
	}
	targets := map[string]bool{}
	for _, e := range ext.Out {
		targets[partialProg.Analysis.Graph.Nodes[e.To].Name] = true
	}
	for _, want := range []string{"lookup", "install", "main"} {
		if !targets[want] {
			t.Errorf("exported %s not marked externally callable", want)
		}
	}
	if targets["lib.mc:probe"] {
		t.Error("static procedure marked externally callable")
	}

	// No cluster may contain the external node, and none of the exported
	// procedures may be a member of a cluster (their unknown callers
	// violate predecessor closure).
	for _, c := range partialProg.Analysis.Clusters.Clusters {
		for _, m := range c.Members {
			name := partialProg.Analysis.Graph.Nodes[m].Name
			if name == "<external>" || name == "lookup" || name == "install" {
				t.Errorf("%s must not be a cluster member in partial mode", name)
			}
		}
	}
}

// TestWebMergingSharesEntries checks §7.6.1 re-merging: sibling procedures
// each referencing a global, driven from a hot loop in main that does NOT
// reference it, produce per-procedure singleton webs under the plain
// algorithm (unprofitable: the entry transfers equal what level 2 already
// does). Re-merging through main promotes the global across the whole loop.
func TestWebMergingSharesEntries(t *testing.T) {
	sources := []Source{{Name: "main.mc", Text: []byte(`
int counter;

void inc() { counter += 1; }
void dec() { counter -= 1; }
int get() { return counter; }

int main() {
	int i;
	int acc = 0;
	for (i = 0; i < 3000; i++) {
		inc();
		inc();
		dec();
		acc += get();
	}
	return acc & 255;
}
`)}}

	plain := MustPreset("C")
	p1, err := Build(context.Background(), sources, plain)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p1.Run(0, false)
	if err != nil {
		t.Fatal(err)
	}

	merged := MustPreset("C")
	merged.Analyzer.MergeWebs = true
	p2, err := Build(context.Background(), sources, merged)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Run(0, false)
	if err != nil {
		t.Fatal(err)
	}

	if r1.Exit != r2.Exit {
		t.Fatalf("merging changed behaviour: %d vs %d", r1.Exit, r2.Exit)
	}
	t.Logf("singleton refs: plain=%d merged=%d; cycles: plain=%d merged=%d",
		r1.Stats.SingletonRefs(), r2.Stats.SingletonRefs(),
		r1.Stats.Cycles, r2.Stats.Cycles)
	if r2.Stats.SingletonRefs() >= r1.Stats.SingletonRefs() {
		t.Errorf("merging did not reduce singleton refs: %d vs %d",
			r2.Stats.SingletonRefs(), r1.Stats.SingletonRefs())
	}
	if r2.Stats.Cycles >= r1.Stats.Cycles {
		t.Errorf("merging did not reduce cycles: %d vs %d", r2.Stats.Cycles, r1.Stats.Cycles)
	}

	// The merged web spans main and all three accessors with main as its
	// single entry.
	var found bool
	for _, w := range p2.Analysis.Webs {
		if w.Var != "counter" || w.Discarded {
			continue
		}
		if w.Size() >= 4 {
			found = true
			if len(w.Entries) != 1 {
				t.Errorf("merged web entries = %v, want exactly main", w.Entries)
			}
		}
	}
	if !found {
		t.Error("no merged web spanning the accessors and main")
	}
}

// TestMergeKeepsDifferentialCorrectness runs the generated-program fuzz
// with MergeWebs enabled.
func TestMergeKeepsDifferentialCorrectness(t *testing.T) {
	runDifferentialWithConfig(t, func() Config {
		c := MustPreset("C")
		c.Analyzer.MergeWebs = true
		c.Name = "C+merge"
		return c
	}())
}

// TestPartialKeepsDifferentialCorrectness runs the fuzz with the §7.2
// conservative mode enabled.
func TestPartialKeepsDifferentialCorrectness(t *testing.T) {
	runDifferentialWithConfig(t, func() Config {
		c := MustPreset("C")
		c.Analyzer.PartialProgram = true
		c.Name = "C+partial"
		return c
	}())
}

func runDifferentialWithConfig(t *testing.T, cfg Config) {
	t.Helper()
	for _, seed := range []int64{11, 12, 13} {
		sources := genSources(seed)
		base, err := Build(context.Background(), sources, MustPreset("L2"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Run(100_000_000, false)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Build(context.Background(), sources, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := p.Run(100_000_000, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Exit != want.Exit {
			t.Errorf("seed %d: %s exit %d != L2 exit %d", seed, cfg.Name, got.Exit, want.Exit)
		}
	}
}

func asSet(ss []string) map[string]bool {
	m := map[string]bool{}
	for _, s := range ss {
		m[s] = true
	}
	return m
}
