package ipra

import (
	"context"
	"testing"

	"ipra/internal/core"
	"ipra/internal/progen"
	"ipra/internal/summary"
)

// benchmarkIncrementalAnalyzer measures per-edit analysis latency: starting
// from a primed analyzer state over a synthesized whole program, each
// iteration re-analyzes incrementally across exactly one seeded edit of the
// given kind, ping-ponging between the base program and its edited twin so
// every iteration pays the same single-edit delta (a chained benchmark
// would instead mutate the workload out from under itself). Compare against
// the matching BenchmarkAnalyzer* run (BENCH_analyzer.json), which is the
// clean-analysis cost the incremental path avoids.
func benchmarkIncrementalAnalyzer(b *testing.B, preset string, kind progen.EditKind) {
	cfg, err := progen.Preset(preset)
	if err != nil {
		b.Fatal(err)
	}
	base := analyzerWorkload(b, preset)
	mut, _ := progen.MutateSummaries(cfg, base, 1, kind)
	var dirty []string
	for i := range mut {
		if base[i] != mut[i] {
			dirty = append(dirty, mut[i].Module)
		}
	}

	opt := core.DefaultOptions()
	opt.Jobs = 1
	ctx := context.Background()
	res, err := core.Analyze(ctx, base, opt)
	if err != nil {
		b.Fatal(err)
	}
	st := core.NewState(res, base, opt)
	if r := st.Unsupported(); r != "" {
		b.Fatalf("state unsupported: %s", r)
	}

	progs := [2][]*summary.ModuleSummary{mut, base}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, st2, rs, err := core.AnalyzeIncremental(ctx, progs[i%2], opt, st, dirty)
		if err != nil {
			b.Fatal(err)
		}
		if kind != progen.EditCycle && rs.Fallback != "" {
			b.Fatalf("unexpected fallback: %s", rs.Fallback)
		}
		if len(res.DB.Procs) == 0 {
			b.Fatal("analyzer produced an empty database")
		}
		st = st2
	}
}

func BenchmarkIncrementalAnalyzerSmallNoop(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "small", progen.EditNoop)
}
func BenchmarkIncrementalAnalyzerSmallBody(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "small", progen.EditBody)
}
func BenchmarkIncrementalAnalyzerSmallCall(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "small", progen.EditCall)
}
func BenchmarkIncrementalAnalyzerMediumNoop(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "medium", progen.EditNoop)
}
func BenchmarkIncrementalAnalyzerMediumBody(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "medium", progen.EditBody)
}
func BenchmarkIncrementalAnalyzerMediumCall(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "medium", progen.EditCall)
}
func BenchmarkIncrementalAnalyzerLargeNoop(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "large", progen.EditNoop)
}
func BenchmarkIncrementalAnalyzerLargeBody(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "large", progen.EditBody)
}
func BenchmarkIncrementalAnalyzerLargeCall(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "large", progen.EditCall)
}

// The cycle edit always falls back to a full analysis (the recursion
// structure changed); this run documents the fallback cost staying at the
// clean-analysis baseline rather than regressing.
func BenchmarkIncrementalAnalyzerLargeCycleFallback(b *testing.B) {
	benchmarkIncrementalAnalyzer(b, "large", progen.EditCycle)
}
