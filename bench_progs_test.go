package ipra

import (
	"context"
	"testing"

	"ipra/internal/benchprogs"
)

func benchSources(t testing.TB, b benchprogs.Benchmark) []Source {
	t.Helper()
	files, err := b.Sources()
	if err != nil {
		t.Fatal(err)
	}
	var out []Source
	for _, f := range files {
		out = append(out, Source{Name: f.Name, Text: f.Text})
	}
	return out
}

// TestBenchmarkProgramsRun compiles every Table 3 analog under every
// configuration and checks the configurations agree on behaviour.
func TestBenchmarkProgramsRun(t *testing.T) {
	for _, b := range benchprogs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sources := benchSources(t, b)

			base, err := Build(context.Background(), sources, MustPreset("L2"))
			if err != nil {
				t.Fatalf("compile L2: %v", err)
			}
			want, err := base.Run(b.MaxInstrs, false)
			if err != nil {
				t.Fatalf("run L2: %v", err)
			}
			t.Logf("L2: exit=%d instrs=%d cycles=%d memrefs=%d singleton=%d",
				want.Exit, want.Stats.Instrs, want.Stats.Cycles,
				want.Stats.MemRefs(), want.Stats.SingletonRefs())

			for _, cfg := range Configs() {
				var opts []BuildOption
				if cfg.WantProfile {
					opts = append(opts, WithProfile(b.MaxInstrs))
				}
				p, err := Build(context.Background(), sources, cfg, opts...)
				if err != nil {
					t.Fatalf("compile %s: %v", cfg.Name, err)
				}
				got, err := p.Run(b.MaxInstrs, false)
				if err != nil {
					t.Fatalf("run %s: %v", cfg.Name, err)
				}
				if got.Exit != want.Exit || got.Output != want.Output {
					t.Errorf("%s: behaviour differs from L2: exit %d vs %d",
						cfg.Name, got.Exit, want.Exit)
				}
				t.Logf("%s: cycles=%d (%.1f%%) singleton=%d (%.1f%%)",
					cfg.Name,
					got.Stats.Cycles, improvement(want.Stats.Cycles, got.Stats.Cycles),
					got.Stats.SingletonRefs(), improvement(want.Stats.SingletonRefs(), got.Stats.SingletonRefs()))
			}
		})
	}
}

// improvement returns the percentage reduction from base to v.
func improvement(base, v uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(base) - float64(v)) / float64(base)
}
