package ipra

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"ipra/internal/benchprogs"
	"ipra/internal/parv"
	"ipra/internal/pipeline"
)

// exeBytes canonically serializes an executable for comparison, using the
// wire encoding (deterministic by construction, maps included).
func exeBytes(t testing.TB, exe *parv.Executable) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := parv.EncodeExecutable(&buf, exe); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// determinismConfigs is the determinism matrix: the baseline plus Table 4 A–F.
func determinismConfigs() []Config {
	return append([]Config{MustPreset("L2")}, Configs()...)
}

// TestParallelCompileDeterminism checks the tentpole guarantee: a
// parallel, cache-served Compile produces byte-identical executables and
// identical analyzer reports to a sequential, cache-bypassing one, for
// the baseline and every Table 4 configuration.
func TestParallelCompileDeterminism(t *testing.T) {
	ResetPhase1Cache()
	for _, b := range []string{"dhrystone", "crtool"} {
		bm, err := benchprogs.ByName(b)
		if err != nil {
			t.Fatal(err)
		}
		sources := benchSources(t, bm)
		for _, cfg := range determinismConfigs() {
			seqCfg := cfg
			seqCfg.Jobs = 1
			seqCfg.DisableCache = true
			parCfg := cfg
			parCfg.Jobs = 8

			seq, err := Build(context.Background(), sources, seqCfg)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", b, cfg.Name, err)
			}
			// Twice in parallel: the first run fills the cache, the
			// second is served from it; both must match the sequential
			// output exactly.
			for _, label := range []string{"parallel-cold", "parallel-cached"} {
				par, err := Build(context.Background(), sources, parCfg)
				if err != nil {
					t.Fatalf("%s/%s %s: %v", b, cfg.Name, label, err)
				}
				if !bytes.Equal(exeBytes(t, seq.Exe), exeBytes(t, par.Exe)) {
					t.Errorf("%s/%s: %s executable differs from sequential", b, cfg.Name, label)
				}
				if !reflect.DeepEqual(seq.Exe, par.Exe) {
					t.Errorf("%s/%s: %s executable struct differs from sequential", b, cfg.Name, label)
				}
				if (seq.Analysis == nil) != (par.Analysis == nil) {
					t.Fatalf("%s/%s: %s analysis presence differs", b, cfg.Name, label)
				}
				if seq.Analysis != nil && seq.Analysis.Report() != par.Analysis.Report() {
					t.Errorf("%s/%s: %s analyzer report differs:\nseq:\n%spar:\n%s",
						b, cfg.Name, label, seq.Analysis.Report(), par.Analysis.Report())
				}
			}
		}
	}
}

// TestParallelCompileProfiledDeterminism covers the profile-guided path
// (compile, train on the VM, re-analyze, re-compile) the same way.
func TestParallelCompileProfiledDeterminism(t *testing.T) {
	ResetPhase1Cache()
	bm, err := benchprogs.ByName("dhrystone")
	if err != nil {
		t.Fatal(err)
	}
	sources := benchSources(t, bm)

	seqCfg := MustPreset("F")
	seqCfg.Jobs = 1
	seqCfg.DisableCache = true
	seq, err := Build(context.Background(), sources, seqCfg, WithProfile(bm.MaxInstrs))
	if err != nil {
		t.Fatal(err)
	}

	parCfg := MustPreset("F")
	parCfg.Jobs = 8
	par, err := Build(context.Background(), sources, parCfg, WithProfile(bm.MaxInstrs))
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(exeBytes(t, seq.Exe), exeBytes(t, par.Exe)) {
		t.Error("profiled executable differs between sequential and parallel compilation")
	}
	if seq.Analysis.Report() != par.Analysis.Report() {
		t.Error("profiled analyzer report differs between sequential and parallel compilation")
	}
}

// TestParallelCompileRace saturates the worker pool: every benchmark of
// the suite compiles concurrently, each itself fanning modules across
// workers, with the shared cache in play. Run under -race this checks
// the phase-1/phase-2 concurrency and the cache's locking.
func TestParallelCompileRace(t *testing.T) {
	ResetPhase1Cache()
	suite := benchprogs.All()
	err := pipeline.ForEach(4, len(suite), func(i int) error {
		sources := benchSources(t, suite[i])
		cfg := MustPreset("C")
		cfg.Jobs = 8
		_, err := Build(context.Background(), sources, cfg)
		if err != nil {
			return err
		}
		// Second compile of the same program: exercises concurrent
		// cache hits while sibling benchmarks still fill theirs.
		cfg2 := MustPreset("L2")
		cfg2.Jobs = 8
		_, err = Build(context.Background(), sources, cfg2)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPhase1CacheReuse checks the cache accounting: the first compile of
// a program misses once per module, every recompile (any configuration)
// hits, and cached compiles match uncached ones exactly.
func TestPhase1CacheReuse(t *testing.T) {
	ResetPhase1Cache()
	bm, err := benchprogs.ByName("fgrep")
	if err != nil {
		t.Fatal(err)
	}
	sources := benchSources(t, bm)

	if _, err := Build(context.Background(), sources, MustPreset("L2")); err != nil {
		t.Fatal(err)
	}
	s := Phase1CacheStats()
	if s.Misses != uint64(len(sources)) || s.Hits != 0 {
		t.Fatalf("cold compile: stats = %+v, want %d misses, 0 hits", s, len(sources))
	}

	cached, err := Build(context.Background(), sources, MustPreset("C"))
	if err != nil {
		t.Fatal(err)
	}
	s = Phase1CacheStats()
	if s.Hits != uint64(len(sources)) {
		t.Fatalf("warm compile: stats = %+v, want %d hits", s, len(sources))
	}

	cold := MustPreset("C")
	cold.DisableCache = true
	uncached, err := Build(context.Background(), sources, cold)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exeBytes(t, cached.Exe), exeBytes(t, uncached.Exe)) {
		t.Error("cache-served compile differs from cold compile")
	}
	if s := Phase1CacheStats(); s.Entries != len(sources) {
		t.Errorf("entries = %d, want %d", s.Entries, len(sources))
	}
}
