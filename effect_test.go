package ipra

import "testing"

// hotGlobals is a small call-intensive program whose globals are accessed
// in a tight call chain — the exact situation interprocedural promotion
// targets: level-2 compilation must store/reload the promoted globals
// around every call.
const hotGlobals = `
int acc;
int scale;
int bias;

int work(int x) {
	acc = acc + x * scale + bias;
	return acc;
}

int wrap(int x) { return work(x) + 1; }

int main() {
	int i;
	acc = 0;
	scale = 3;
	bias = 1;
	for (i = 0; i < 2000; i++) {
		wrap(i);
	}
	return acc & 255;
}
`

// TestPromotionReducesSingletonRefs checks the Table 5 effect: web
// promotion (config C) eliminates a large share of the singleton memory
// references that remain after level-2 optimization.
func TestPromotionReducesSingletonRefs(t *testing.T) {
	l2 := compileAndRun(t, MustPreset("L2"), src("main.mc", hotGlobals))
	c := compileAndRun(t, MustPreset("C"), src("main.mc", hotGlobals))

	if c.Exit != l2.Exit {
		t.Fatalf("behaviour differs: C exit %d, L2 exit %d", c.Exit, l2.Exit)
	}
	l2Refs := l2.Stats.SingletonRefs()
	cRefs := c.Stats.SingletonRefs()
	t.Logf("singleton refs: L2=%d C=%d (cycles L2=%d C=%d)", l2Refs, cRefs, l2.Stats.Cycles, c.Stats.Cycles)
	if cRefs >= l2Refs {
		t.Errorf("config C singleton refs (%d) not below L2 (%d)", cRefs, l2Refs)
	}
	// The program is dominated by global traffic around calls: promotion
	// should eliminate well over half of the singleton references.
	if float64(cRefs) > 0.5*float64(l2Refs) {
		t.Errorf("config C eliminated too few singleton refs: %d of %d remain", cRefs, l2Refs)
	}
	if c.Stats.Cycles >= l2.Stats.Cycles {
		t.Errorf("config C cycles (%d) not below L2 (%d)", c.Stats.Cycles, l2.Stats.Cycles)
	}
}

// TestSpillMotionReducesCycles checks the Table 4 column A effect on a
// call-intensive cluster: a cheap parent calling register-hungry children
// in a loop.
func TestSpillMotionReducesCycles(t *testing.T) {
	prog := `
int sink;

int child(int a, int b, int c) {
	int t1 = a * 3;
	int t2 = b * 5;
	int t3 = c * 7;
	int t4 = a + b;
	int t5 = b + c;
	int u = helper(t1 + t2);
	return t1 + t2 + t3 + t4 + t5 + u;
}

int helper(int x) { return x ^ 21; }

int parent(int n) {
	int i;
	int s = 0;
	for (i = 0; i < n; i++) {
		s += child(i, i + 1, i + 2);
	}
	return s;
}

int main() {
	sink = parent(3000);
	return sink & 255;
}
`
	l2 := compileAndRun(t, MustPreset("L2"), src("main.mc", prog))
	a := compileAndRun(t, MustPreset("A"), src("main.mc", prog))
	if a.Exit != l2.Exit {
		t.Fatalf("behaviour differs: A exit %d, L2 exit %d", a.Exit, l2.Exit)
	}
	t.Logf("cycles: L2=%d A=%d; memrefs: L2=%d A=%d",
		l2.Stats.Cycles, a.Stats.Cycles, l2.Stats.MemRefs(), a.Stats.MemRefs())
	if a.Stats.Cycles > l2.Stats.Cycles {
		t.Errorf("spill motion made the program slower: %d > %d", a.Stats.Cycles, l2.Stats.Cycles)
	}
}
