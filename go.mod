module ipra

go 1.22
