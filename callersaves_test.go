package ipra

import (
	"context"
	"testing"
)

// callerSavesProgram: driver holds values across calls to a tiny leaf.
// Under the standard convention those values need callee-saves registers
// (save/restore in driver); with §7.6.2 caller-saves preallocation the
// leaf's call tree advertises that it only touches a couple of scratch
// registers, so driver keeps the values in untouched caller-saves
// registers for free.
const callerSavesProgram = `
int tiny(int x) { return x ^ 3; }

// middle is called thousands of times and holds two values across its
// call to tiny: under the standard convention it saves/restores two
// callee-saves registers on every invocation. tiny's advertised call-tree
// clobber set spares the upper scratch registers, so the extension keeps
// a and b in caller-saves registers instead — no spill code at all.
int middle(int i) {
	int a = i * 3;
	int b = i + 7;
	return tiny(i) + a + b;
}

int main() {
	int i;
	int s = 0;
	for (i = 0; i < 4000; i++) {
		s += middle(i);
	}
	return s & 255;
}
`

func withCallerSaves() Config {
	c := MustPreset("A")
	c.Name = "A+callersaves"
	c.Analyzer.CallerSavesPreallocation = true
	return c
}

// bareCallerSaves isolates the extension: no spill motion, no promotion —
// only the per-callee clobber sets differ from the baseline.
func bareCallerSaves(on bool) Config {
	c := MustPreset("A")
	c.Analyzer.SpillMotion = false
	c.Analyzer.CallerSavesPreallocation = on
	if on {
		c.Name = "cs-only"
	} else {
		c.Name = "bare"
	}
	return c
}

// TestCallerSavesPreallocation checks behaviour equivalence and that the
// extension reduces memory traffic on the motivating pattern when it is
// the only interprocedural mechanism active (spill motion's FREE registers
// would otherwise absorb the same values).
func TestCallerSavesPreallocation(t *testing.T) {
	sources := []Source{{Name: "main.mc", Text: []byte(callerSavesProgram)}}

	base := compileAndRun(t, bareCallerSaves(false), sources...)
	ext := compileAndRun(t, bareCallerSaves(true), sources...)
	if ext.Exit != base.Exit {
		t.Fatalf("extension changed behaviour: %d vs %d", ext.Exit, base.Exit)
	}
	t.Logf("cycles: bare=%d cs=%d; memrefs: bare=%d cs=%d",
		base.Stats.Cycles, ext.Stats.Cycles, base.Stats.MemRefs(), ext.Stats.MemRefs())
	if ext.Stats.MemRefs() >= base.Stats.MemRefs() {
		t.Errorf("extension did not reduce memory references: %d vs %d",
			ext.Stats.MemRefs(), base.Stats.MemRefs())
	}
	if ext.Stats.Cycles >= base.Stats.Cycles {
		t.Errorf("extension did not reduce cycles: %d vs %d",
			ext.Stats.Cycles, base.Stats.Cycles)
	}
}

// TestCallerSavesClobberSetsInDatabase verifies the directives: a tiny
// leaf's advertised clobber set must be far smaller than the worst case,
// and a recursive procedure's must stay conservative.
func TestCallerSavesClobberSets(t *testing.T) {
	sources := []Source{{Name: "main.mc", Text: []byte(`
int tiny(int x) { return x + 1; }
int rec(int n) { if (n <= 0) { return 0; } return rec(n - 1) + tiny(n); }
int main() { return rec(5); }
`)}}
	p, err := Build(context.Background(), sources, withCallerSaves())
	if err != nil {
		t.Fatal(err)
	}
	tiny := p.DB.Lookup("tiny")
	if !tiny.HasClobber {
		t.Fatal("leaf has no clobber set")
	}
	if tiny.ClobberAtCalls.Count() >= 11 {
		t.Errorf("leaf clobber set not contracted: %s", tiny.ClobberAtCalls)
	}
	rec := p.DB.Lookup("rec")
	if !rec.HasClobber {
		t.Fatal("recursive procedure has no clobber set")
	}
	// Recursive chains fall back to (at least) the standard caller-saves.
	if rec.ClobberAtCalls.Count() < 11 {
		t.Errorf("recursive clobber set suspiciously small: %s", rec.ClobberAtCalls)
	}
}

// TestCallerSavesDifferential fuzzes the extension across generated
// programs and all promotion modes.
func TestCallerSavesDifferential(t *testing.T) {
	for _, seed := range []int64{21, 22, 23, 24} {
		sources := genSources(seed)
		base, err := Build(context.Background(), sources, MustPreset("L2"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Run(100_000_000, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"A", "C", "D", "E"} {
			cfg := MustPreset(name)
			cfg.Analyzer.CallerSavesPreallocation = true
			cfg.Name += "+cs"
			p, err := Build(context.Background(), sources, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg.Name, err)
			}
			got, err := p.Run(100_000_000, false)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg.Name, err)
			}
			if got.Exit != want.Exit {
				t.Errorf("seed %d: %s exit %d != L2 %d", seed, cfg.Name, got.Exit, want.Exit)
			}
		}
	}
}
